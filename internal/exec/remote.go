package exec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"lfi/internal/coverage"
)

// Remote is the client side of the wire protocol: one TCP connection to
// an `lfi serve` worker.
//
// Against a protocol-3 worker the connection is **pipelined**: Run is
// safe for concurrent use and up to Pipeline() batches ride the wire
// at once, matched back to callers by request id through a single
// reader goroutine — the worker's input queue stays non-empty, so the
// round-trip latency is off the critical path. Cancellation sends a
// cancel frame and the worker answers promptly with the completed
// prefix; the drain grace survives only as the fallback for wedged or
// proto≤2 peers. A broken connection fails every in-flight batch with
// BackendError and marks the backend dead — the scheduler requeues the
// batches' runs elsewhere, so killing a worker loses no work.
type Remote struct {
	addr  string
	hello helloInfo
	proto int // negotiated protocol: min(ours, worker's)

	// drainGrace bounds how long a cancelled Run keeps waiting for the
	// in-flight response before force-closing the connection. With a
	// protocol-3 worker the cancel frame makes the response arrive in
	// batch-drain time (milliseconds); older workers run the batch to
	// completion, which is what the grace was sized for.
	drainGrace time.Duration
	// pipeline is the in-flight batch budget Pipeline() advertises to
	// the fleet scheduler (protocol 3 only).
	pipeline int

	mu      sync.Mutex // request ids + pending-response registry
	nextID  uint64
	pending map[uint64]chan *response
	readErr error // reader's terminal error; set once under mu

	writeMu sync.Mutex // one frame writer at a time

	// universes is the per-connection coverage-universe table. Only
	// the reader goroutine touches it after Dial.
	universes map[uint64]*coverage.Index

	funcsMu sync.Mutex
	funcs   map[string]map[string]string // system -> fingerprint cache

	// conn teardown has its own lock: a drain timeout must force-close
	// the connection while the reader is blocked in a read — closing
	// the socket is exactly what unblocks that read.
	connMu sync.Mutex
	conn   net.Conn

	readDone chan struct{}
}

// ProtoMismatchError reports a worker whose wire protocol this client
// cannot speak. The fleet assembler treats it as "drop this worker",
// not "abort the campaign" — the worker just needs a rebuild.
type ProtoMismatchError struct {
	Addr string
	Got  int
}

// Error renders the mismatch with the remedy.
func (e *ProtoMismatchError) Error() string {
	return fmt.Sprintf("exec: remote %s: worker speaks proto v%d, need v%d — rebuild worker",
		e.Addr, e.Got, protoVersion)
}

// defaultDrainGrace is generous: a batch is at most a few hundred
// simulated runs, each of which completes in milliseconds.
const defaultDrainGrace = 30 * time.Second

// defaultPipeline is how many batches a protocol-3 connection keeps in
// flight: enough that the worker never idles waiting on the wire, few
// enough that a cancel loses little queued work.
const defaultPipeline = 4

// Dial connects to an `lfi serve` worker and performs the hello
// exchange, negotiating the protocol version and learning the worker's
// capacity, registered systems, and (protocol 3) per-system image
// versions. A protocol-1 worker is served with JSON run frames; a
// worker outside [protoOldest, protoVersion] fails with
// ProtoMismatchError so fleet assembly can drop the worker and keep
// the campaign.
func Dial(addr string) (*Remote, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("exec: remote %s: %w", addr, err)
	}
	r := &Remote{
		addr:       addr,
		conn:       conn,
		proto:      protoOldest, // hello itself is always JSON
		drainGrace: defaultDrainGrace,
		pipeline:   defaultPipeline,
		pending:    make(map[uint64]chan *response),
		universes:  make(map[uint64]*coverage.Index),
		readDone:   make(chan struct{}),
	}
	// Hello runs synchronously, before the reader demux starts.
	r.nextID = 1
	if err := writeFrame(conn, &request{ID: 1, Method: "hello", Proto: protoVersion}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("exec: remote %s: hello: %w", addr, err)
	}
	var resp response
	if err := readFrame(conn, &resp); err != nil {
		conn.Close()
		return nil, fmt.Errorf("exec: remote %s: hello: %w", addr, err)
	}
	if resp.ID != 1 || resp.Hello == nil {
		conn.Close()
		return nil, fmt.Errorf("exec: remote %s: malformed hello response", addr)
	}
	if resp.Hello.Proto < protoOldest || resp.Hello.Proto > protoVersion {
		conn.Close()
		return nil, &ProtoMismatchError{Addr: addr, Got: resp.Hello.Proto}
	}
	r.hello = *resp.Hello
	r.proto = resp.Hello.Proto
	go r.readLoop(conn)
	return r, nil
}

// SetDrainGrace bounds how long a cancelled Run keeps draining the
// in-flight batch before force-closing the connection (default 30s).
// Against protocol-3 workers the cancel frame makes the grace a pure
// fallback; it never delays an uncancelled run.
func (r *Remote) SetDrainGrace(d time.Duration) {
	if d > 0 {
		r.drainGrace = d
	}
}

// SetPipeline overrides the in-flight batch budget (default 4). It
// only informs the scheduler via Pipeline(); Run itself accepts any
// number of concurrent callers.
func (r *Remote) SetPipeline(k int) {
	if k > 0 {
		r.pipeline = k
	}
}

// Pipeline reports how many batches this backend wants in flight at
// once: the configured depth against a protocol-3 worker, 1 against
// anything older (those connections are strictly call-and-response).
func (r *Remote) Pipeline() int {
	if r.proto >= 3 {
		return r.pipeline
	}
	return 1
}

// Info reports the worker's advertised metadata. A remote worker is
// crash-isolated by construction: it is a different process on
// (possibly) a different machine.
func (r *Remote) Info() Info {
	return Info{Name: "remote(" + r.addr + ")", Kind: KindRemote, Capacity: r.hello.Capacity, Isolated: true}
}

// Systems returns the registered system names the worker advertised.
func (r *Remote) Systems() []string { return r.hello.Systems }

// ImageVersion reports the image version the worker advertised for a
// system ("" when unknown: a proto≤2 worker, or a system it lacks).
func (r *Remote) ImageVersion(sys string) string { return r.hello.Images[sys] }

// FuncFingerprints fetches (and caches) the worker's per-function
// fingerprints for one system — the mixed-build reconciliation input:
// diffing them against the local build's fingerprints bounds what an
// image divergence can have touched.
func (r *Remote) FuncFingerprints(sys string) (map[string]string, error) {
	r.funcsMu.Lock()
	defer r.funcsMu.Unlock()
	if m, ok := r.funcs[sys]; ok {
		return m, nil
	}
	if r.proto < 3 {
		return nil, fmt.Errorf("exec: remote %s: proto v%d has no funcs method", r.addr, r.proto)
	}
	conn := r.liveConn()
	if conn == nil {
		return nil, fmt.Errorf("exec: remote %s: connection closed", r.addr)
	}
	id, ch, err := r.register()
	if err != nil {
		return nil, fmt.Errorf("exec: remote %s: funcs: %w", r.addr, err)
	}
	r.writeMu.Lock()
	werr := writeFrame(conn, &request{ID: id, Method: "funcs", System: sys})
	r.writeMu.Unlock()
	if werr != nil {
		r.abandon(id)
		r.drop()
		return nil, fmt.Errorf("exec: remote %s: funcs: %w", r.addr, werr)
	}
	resp := <-ch
	if resp == nil {
		return nil, fmt.Errorf("exec: remote %s: funcs: %w", r.addr, r.readError())
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("exec: remote %s: funcs: %s", r.addr, resp.Error)
	}
	if r.funcs == nil {
		r.funcs = make(map[string]map[string]string)
	}
	r.funcs[sys] = resp.Funcs
	return resp.Funcs, nil
}

// Close shuts the connection down. It never waits on an in-flight
// call: closing the socket is what fails the reader's blocked read,
// which in turn fails every pending request.
func (r *Remote) Close() error {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	if r.conn == nil {
		return nil
	}
	err := r.conn.Close()
	r.conn = nil
	return err
}

// drop tears the connection down after a protocol failure.
func (r *Remote) drop() {
	r.Close()
}

// liveConn snapshots the connection for one exchange.
func (r *Remote) liveConn() net.Conn {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	return r.conn
}

// register allocates a request id and its response channel.
func (r *Remote) register() (uint64, chan *response, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.readErr != nil {
		return 0, nil, r.readErr
	}
	r.nextID++
	id := r.nextID
	ch := make(chan *response, 1)
	r.pending[id] = ch
	return id, ch, nil
}

// abandon forgets a request whose frame never made it out.
func (r *Remote) abandon(id uint64) {
	r.mu.Lock()
	delete(r.pending, id)
	r.mu.Unlock()
}

// readError reports why the reader stopped.
func (r *Remote) readError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.readErr != nil {
		return r.readErr
	}
	return fmt.Errorf("connection closed")
}

// readLoop is the connection's single reader: it decodes every inbound
// frame (binary run responses against the shared universe table, JSON
// for everything else) and hands it to the pending request it answers.
// On any failure it tears the connection down and fails every pending
// request — their callers surface BackendError and the scheduler
// requeues.
func (r *Remote) readLoop(conn net.Conn) {
	var err error
	for {
		var payload []byte
		payload, err = readRawFrame(conn)
		if err != nil {
			break
		}
		resp := new(response)
		if isBinaryFrame(payload, frameRunResp) {
			err = decodeRunResponse(payload, resp, r.universes)
		} else {
			err = json.Unmarshal(payload, resp)
		}
		if err != nil {
			break
		}
		r.mu.Lock()
		ch := r.pending[resp.ID]
		delete(r.pending, resp.ID)
		r.mu.Unlock()
		if ch == nil {
			err = fmt.Errorf("response id %d answers no in-flight request", resp.ID)
			break
		}
		ch <- resp
	}
	r.Close()
	r.mu.Lock()
	r.readErr = err
	for id, ch := range r.pending {
		delete(r.pending, id)
		close(ch)
	}
	r.mu.Unlock()
	close(r.readDone)
}

// Run ships the batch to the worker and waits for its outcomes; it is
// safe for concurrent use (the fleet pipelines several batches onto
// one protocol-3 connection). On cancellation it sends a cancel frame
// (protocol 3) so the worker stops after its in-flight runs and
// answers with the completed prefix — returned with ctx.Err(), so the
// caller persists them exactly like a locally interrupted batch. The
// drain grace remains as the fallback: a proto≤2 worker runs the batch
// out, a wedged worker is force-closed. Transport failures (a killed
// worker) come back as BackendError: requeue, don't retry here.
func (r *Remote) Run(ctx context.Context, b *Batch) ([]*Outcome, error) {
	conn := r.liveConn()
	if conn == nil {
		return nil, &BackendError{Backend: r.Info().Name, Err: fmt.Errorf("connection closed")}
	}
	id, ch, err := r.register()
	if err != nil {
		return nil, &BackendError{Backend: r.Info().Name, Err: err}
	}
	r.writeMu.Lock()
	if r.proto >= 2 {
		err = writeRawFrame(conn, encodeRunRequest(id, b))
	} else {
		err = writeFrame(conn, &request{ID: id, Method: "run", Batch: toWire(b)})
	}
	r.writeMu.Unlock()
	if err != nil {
		r.abandon(id)
		r.drop()
		return nil, &BackendError{Backend: r.Info().Name, Err: err}
	}
	var resp *response
	cancelled := false
	select {
	case resp = <-ch:
	case <-ctx.Done():
		cancelled = true
		if r.proto >= 3 {
			// Fast drain: the worker stops after in-flight runs and
			// answers with the prefix. A write failure just demotes us
			// to the grace path below.
			r.writeMu.Lock()
			writeRawFrame(conn, encodeCancel(id))
			r.writeMu.Unlock()
		}
		t := time.NewTimer(r.drainGrace)
		select {
		case resp = <-ch:
			t.Stop()
		case <-t.C:
			r.Close()
			<-r.readDone // reader fails remaining pending requests
			return nil, &BackendError{Backend: r.Info().Name, Err: fmt.Errorf("cancelled and drain timed out")}
		}
	}
	if resp == nil {
		// Reader died and closed the channel: transport failure.
		return nil, &BackendError{Backend: r.Info().Name, Err: r.readError()}
	}
	outs := r.observed(b, resp.Outcomes)
	switch {
	case cancelled:
		if resp.Error != "" && resp.Error != cancelledBatch {
			return outs, fmt.Errorf("exec: remote %s: %s", r.addr, resp.Error)
		}
		return outs, ctx.Err()
	case resp.Error == cancelledBatch:
		// The worker cancelled without us asking (it is shutting
		// down): a backend failure with a salvageable prefix.
		return outs, &BackendError{Backend: r.Info().Name, Err: errors.New("worker cancelled batch")}
	case resp.Error != "":
		// A batch problem (unknown system, bad scenario, mid-batch run
		// error), not a backend one; the worker's completed prefix
		// still comes back for the caller to fold.
		return outs, fmt.Errorf("exec: remote %s: %s", r.addr, resp.Error)
	}
	return outs, nil
}

// observed caps outcomes at the batch length, tags them with the
// worker's image version when it differs from the batch's expected
// image (the mixed-build handshake), and streams them to the batch
// observer.
func (r *Remote) observed(b *Batch, outs []*Outcome) []*Outcome {
	if len(outs) > len(b.Scenarios) {
		outs = outs[:len(b.Scenarios)]
	}
	if img := r.hello.Images[b.System]; img != "" && b.Image != "" && img != b.Image {
		for _, o := range outs {
			o.Image = img
		}
	}
	if b.Observe != nil {
		for i, o := range outs {
			b.Observe(i, o)
		}
	}
	return outs
}
