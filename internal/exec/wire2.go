package exec

import (
	"encoding/binary"
	"fmt"

	"lfi/internal/coverage"
	"lfi/internal/scenario"
)

// Protocol-2 binary payloads for the hot "run" method. The frame layer
// (4-byte length prefix) is shared with JSON; a binary payload is
// recognized by its first byte:
//
//	payload := 0xB2 kind body
//	kind    := 0x01 (run request) | 0x02 (run response) | 0x03 (cancel, protocol 3)
//
// Run request body:
//
//	uvarint id
//	string  system                  (uvarint length + bytes)
//	varint  seed                    (zigzag)
//	byte    flags                   (bit0: coverage)
//	uvarint nscenarios
//	nscenarios × string             (canonical scenario XML)
//
// Run response body:
//
//	uvarint id
//	string  error                   ("" = ok)
//	uvarint universeTag             (0 = no coverage in this response)
//	if tag != 0:
//	  byte inline                   (1 = table follows, 0 = previously sent)
//	  if inline: uvarint n, n × string   (sorted block-ID universe)
//	uvarint nstrings, nstrings × string  (response string table)
//	uvarint noutcomes
//	noutcomes × outcome
//
// Outcome:
//
//	byte    flags                   (bit0 crashed, bit1 has coverage bitset)
//	ref     name                    (uvarint string-table index+1; 0 = "")
//	if crashed: uvarint kind, ref reason, uvarint thread
//	ref     workErr
//	ref     signature
//	uvarint injections
//	if coverage: uvarint nwords, nwords × 8-byte little-endian words
//
// The block-universe table is per connection: the worker sends it
// inline with the first coverage response and by tag afterwards, so
// steady-state responses carry coverage as a few dozen bitset bytes
// instead of a sorted []string of block IDs. The string table
// deduplicates repeated crash reasons and failure signatures within a
// response.

const (
	frameMagic     = 0xB2
	frameRunReq    = 0x01
	frameRunResp   = 0x02
	frameCancel    = 0x03
	outCrashed     = 1 << 0
	outHasCoverage = 1 << 1
	reqCoverage    = 1 << 0
)

// --- encoding ----------------------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeRunRequest encodes a run request for a protocol-2 peer.
func encodeRunRequest(id uint64, b *Batch) []byte {
	out := []byte{frameMagic, frameRunReq}
	out = appendUvarint(out, id)
	out = appendString(out, b.System)
	out = appendVarint(out, b.Seed)
	var flags byte
	if b.Coverage {
		flags |= reqCoverage
	}
	out = append(out, flags)
	out = appendUvarint(out, uint64(len(b.Scenarios)))
	for _, s := range b.Scenarios {
		doc := s.Serialize()
		out = appendUvarint(out, uint64(len(doc)))
		out = append(out, doc...)
	}
	return out
}

// encodeCancel encodes a protocol-3 cancel frame naming an in-flight
// run request. Cancel has no response of its own: the cancelled run
// request answers with its completed prefix.
func encodeCancel(id uint64) []byte {
	out := []byte{frameMagic, frameCancel}
	return appendUvarint(out, id)
}

// frameID reads the request/response id every binary frame kind leads
// with, without decoding the rest — the server's read loop needs the
// id before the (potentially deferred) full decode.
func frameID(payload []byte) (uint64, error) {
	d := &bdec{data: payload, off: 2}
	id := d.uvarint()
	return id, d.err
}

// respEncoder assembles one run response's string table while encoding.
type respEncoder struct {
	strs map[string]uint64 // string -> table index
	tab  []string
}

func (e *respEncoder) ref(s string) uint64 {
	if s == "" {
		return 0
	}
	if i, ok := e.strs[s]; ok {
		return i + 1
	}
	if e.strs == nil {
		e.strs = make(map[string]uint64)
	}
	i := uint64(len(e.tab))
	e.strs[s] = i
	e.tab = append(e.tab, s)
	return i + 1
}

// encodeRunResponse encodes outcomes for a protocol-2 peer. universeTag
// and inlineUniverse describe the coverage universe section: tag 0
// means no outcome in this response carries coverage.
func encodeRunResponse(id uint64, errStr string, outs []*Outcome, universeTag uint64, inlineUniverse []string) []byte {
	var enc respEncoder
	// Pre-encode outcomes so the string table is complete before it is
	// written; the body is assembled after the header.
	body := make([]byte, 0, 64*len(outs))
	body = appendUvarint(body, uint64(len(outs)))
	for _, o := range outs {
		var flags byte
		if o.Crashed {
			flags |= outCrashed
		}
		if o.CovU != nil {
			flags |= outHasCoverage
		}
		body = append(body, flags)
		body = appendUvarint(body, enc.ref(o.Name))
		if o.Crashed {
			body = appendUvarint(body, uint64(o.CrashKind))
			body = appendUvarint(body, enc.ref(o.CrashReason))
			body = appendUvarint(body, uint64(o.CrashThread))
		}
		body = appendUvarint(body, enc.ref(o.WorkErr))
		body = appendUvarint(body, enc.ref(o.Signature))
		body = appendUvarint(body, uint64(o.Injections))
		if o.CovU != nil {
			body = appendUvarint(body, uint64(len(o.Cov)))
			for _, w := range o.Cov {
				body = binary.LittleEndian.AppendUint64(body, w)
			}
		}
	}
	out := []byte{frameMagic, frameRunResp}
	out = appendUvarint(out, id)
	out = appendString(out, errStr)
	out = appendUvarint(out, universeTag)
	if universeTag != 0 {
		if inlineUniverse != nil {
			out = append(out, 1)
			out = appendUvarint(out, uint64(len(inlineUniverse)))
			for _, s := range inlineUniverse {
				out = appendString(out, s)
			}
		} else {
			out = append(out, 0)
		}
	}
	out = appendUvarint(out, uint64(len(enc.tab)))
	for _, s := range enc.tab {
		out = appendString(out, s)
	}
	return append(out, body...)
}

// --- decoding ----------------------------------------------------------------

// bdec is a cursor over one binary payload; the first error sticks.
type bdec struct {
	data []byte
	off  int
	err  error
}

func (d *bdec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("exec: truncated binary frame at offset %d", d.off)
	}
}

func (d *bdec) byte() byte {
	if d.err != nil || d.off >= len(d.data) {
		d.fail()
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

func (d *bdec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) str() string {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.data)-d.off) {
		d.fail()
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// isBinaryFrame reports whether a payload is a protocol-2 binary frame
// of the given kind.
func isBinaryFrame(payload []byte, kind byte) bool {
	return len(payload) >= 2 && payload[0] == frameMagic && payload[1] == kind
}

// decodeRunRequest parses a binary run request. parse resolves one
// canonical XML document to a scenario (the server memoizes it so
// repeated batches share scenario — and therefore compiled-program —
// identity).
func decodeRunRequest(payload []byte, parse func(string) (*scenario.Scenario, error)) (id uint64, b *Batch, err error) {
	d := &bdec{data: payload, off: 2}
	id = d.uvarint()
	b = &Batch{System: d.str(), Seed: d.varint()}
	flags := d.byte()
	b.Coverage = flags&reqCoverage != 0
	n := d.uvarint()
	if d.err != nil {
		return id, nil, d.err
	}
	if n > uint64(len(payload)) { // cheap sanity bound before allocating
		return id, nil, fmt.Errorf("exec: binary frame: %d scenarios in %d-byte payload", n, len(payload))
	}
	b.Scenarios = make([]*scenario.Scenario, 0, n)
	for i := uint64(0); i < n; i++ {
		doc := d.str()
		if d.err != nil {
			return id, nil, d.err
		}
		s, perr := parse(doc)
		if perr != nil {
			return id, nil, fmt.Errorf("exec: batch scenario %d: %w", i, perr)
		}
		b.Scenarios = append(b.Scenarios, s)
	}
	return id, b, d.err
}

// decodeRunResponse parses a binary run response. universes is the
// client's per-connection tag → universe cache; an inline table
// populates it, a bare tag must already be present.
func decodeRunResponse(payload []byte, resp *response, universes map[uint64]*coverage.Index) error {
	d := &bdec{data: payload, off: 2}
	resp.ID = d.uvarint()
	resp.Error = d.str()
	resp.Hello = nil
	resp.Outcomes = nil
	var idx *coverage.Index
	if tag := d.uvarint(); tag != 0 {
		if inline := d.byte(); inline == 1 {
			n := d.uvarint()
			if d.err != nil || n > uint64(len(payload)) {
				d.fail()
				return d.err
			}
			ids := make([]string, 0, n)
			for i := uint64(0); i < n; i++ {
				ids = append(ids, d.str())
			}
			if d.err != nil {
				return d.err
			}
			idx = coverage.NewIndex(ids)
			universes[tag] = idx
		} else {
			var ok bool
			if idx, ok = universes[tag]; !ok {
				return fmt.Errorf("exec: binary frame references unknown universe %d", tag)
			}
		}
	}
	nstr := d.uvarint()
	if d.err != nil || nstr > uint64(len(payload)) {
		d.fail()
		return d.err
	}
	tab := make([]string, 0, nstr)
	for i := uint64(0); i < nstr; i++ {
		tab = append(tab, d.str())
	}
	ref := func() string {
		i := d.uvarint()
		if i == 0 {
			return ""
		}
		if i > uint64(len(tab)) {
			d.fail()
			return ""
		}
		return tab[i-1]
	}
	n := d.uvarint()
	if d.err != nil || n > uint64(len(payload)) {
		d.fail()
		return d.err
	}
	resp.Outcomes = make([]*Outcome, 0, n)
	for i := uint64(0); i < n; i++ {
		o := newOutcome() // pooled; the consumer hands it back via Recycle
		flags := d.byte()
		o.Crashed = flags&outCrashed != 0
		o.Name = ref()
		if o.Crashed {
			o.CrashKind = int(d.uvarint())
			o.CrashReason = ref()
			o.CrashThread = int(d.uvarint())
		}
		o.WorkErr = ref()
		o.Signature = ref()
		o.Injections = int(d.uvarint())
		if flags&outHasCoverage != 0 {
			if idx == nil {
				return fmt.Errorf("exec: binary frame: outcome coverage without universe")
			}
			nw := d.uvarint()
			// Divide, don't multiply: nw*8 can wrap for a hostile varint.
			if d.err != nil || nw > uint64(len(d.data)-d.off)/8 {
				d.fail()
				return d.err
			}
			if uint64(cap(o.Cov)) >= nw {
				o.Cov = o.Cov[:nw]
			} else {
				o.Cov = make(coverage.Bitset, nw)
			}
			for w := uint64(0); w < nw; w++ {
				o.Cov[w] = binary.LittleEndian.Uint64(d.data[d.off:])
				d.off += 8
			}
			o.CovU = idx
		}
		if d.err != nil {
			return d.err
		}
		resp.Outcomes = append(resp.Outcomes, o)
	}
	return d.err
}
