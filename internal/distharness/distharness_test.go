package distharness_test

import (
	"testing"

	"lfi/internal/core"
	"lfi/internal/distharness"
	"lfi/internal/raft"
	"lfi/internal/scenario"
)

// dropsUnderSeed replays the RAFT trace with a probabilistic recvfrom
// fault and returns the observed loss ordering — which trace messages
// the zero-depth buffer dropped, in order. Crashes and workload
// failures are irrelevant here; only the drop sequence is under test.
func dropsUnderSeed(t *testing.T, seed int64) []int {
	t.Helper()
	s, err := scenario.ParseString(`<scenario name="drop-coin">
	  <trigger id="rnd" class="RandomTrigger"><args><probability>0.4</probability></args></trigger>
	  <function name="recvfrom" return="-1" errno="EINTR"><reftrigger ref="rnd" /></function>
	</scenario>`)
	if err != nil {
		t.Fatal(err)
	}
	h := distharness.New(raft.Protocol())
	rt, err := core.New(h.R.Image(), s, core.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	rt.Install()
	defer rt.Uninstall()
	func() {
		defer func() { recover() }() // a simulated crash ends the replay early
		h.Run()
	}()
	return h.Drops
}

// TestDropOrderingDeterministic is the harness's determinism property:
// the same seed must produce the identical drop ordering through the
// trace loop — endpoint creation order, staging order and the
// zero-depth-buffer drop rule leave the injected RNG as the only
// source of variation. A different seed exists that produces a
// different ordering, so the property is not vacuous.
func TestDropOrderingDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a, b := dropsUnderSeed(t, seed), dropsUnderSeed(t, seed)
		if len(a) == 0 {
			t.Fatalf("seed %d: no drops; probability too low for the property to bite", seed)
		}
		if len(a) != len(b) {
			t.Fatalf("seed %d: drop counts diverged: %v vs %v", seed, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: drop ordering diverged at %d: %v vs %v", seed, i, a, b)
			}
		}
	}
	a, diverged := dropsUnderSeed(t, 1), false
	for seed := int64(2); seed <= 6 && !diverged; seed++ {
		c := dropsUnderSeed(t, seed)
		if len(c) != len(a) {
			diverged = true
			break
		}
		for i := range a {
			if a[i] != c[i] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("five different seeds all produced the same drop ordering")
	}
}
