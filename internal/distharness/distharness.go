// Package distharness is the protocol-agnostic scripted replica-trace
// harness: the reusable distributed-recovery layer the paper's
// extensibility claim asks for. A distributed target plugs in as a
// Protocol — a replica factory, an encoded message trace, and a
// liveness/safety oracle — and the harness supplies the rest: the
// recvfrom-interception ↔ trace-datagram loop, zero-depth-buffer loss
// semantics (netsim.Drop), and opt-in per-replica coverage, identical
// for every protocol.
//
// The loop replays a recorded trace against one replica-under-test.
// Each scripted datagram is staged on the wire and consumed by exactly
// one interposed recvfrom; a failed receive — injected or real — drops
// the staged datagram, modelling a zero-depth socket buffer, so the
// i-th receive interception maps 1:1 to the i-th trace message and
// injected receive faults have real loss semantics. Because the replica
// polls synchronously, exploration over a replica binary is as
// deterministic and as fast as the single-process application targets.
package distharness

import (
	"fmt"

	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/libsim"
	"lfi/internal/netsim"
)

// Replica is the harness's view of one replica-under-test.
type Replica interface {
	// Image is the replica's simulated process (the controller's
	// injection surface).
	Image() *libsim.C
	// Coverage is the replica's block tracker; the harness merges it
	// into the explorer's accumulator after each run.
	Coverage() *coverage.Tracker
	// Open creates and binds the replica socket without starting any
	// background loop — the harness drives receives itself.
	Open() error
	// PollOnce performs exactly one non-blocking receive and handles
	// the message if one arrived, reporting whether a datagram was
	// consumed. Crashes raised while handling propagate as panics to
	// the caller (what the controller's monitor expects).
	PollOnce(buf []byte) bool
	// Finish runs the replica's post-trace epilogue (checkpoints,
	// snapshots, shutdown paths — where Table 1 loves to hide bugs).
	Finish()
}

// Protocol describes one distributed target: everything protocol-
// specific the generic trace loop needs. Implementations are stateless
// values; all per-run state lives in the Replica a NewReplica call
// returns.
type Protocol interface {
	// Name is the registry/system name ("pbft", "raft").
	Name() string
	// Addr is the replica-under-test's network address.
	Addr() string
	// Sinks are the peer and client addresses to bind sink endpoints
	// on, in order, so every outbound send has a live destination.
	Sinks() []string
	// Trace is the recorded message sequence, one encoded datagram per
	// receive interception.
	Trace() [][]byte
	// NewReplica builds a fresh replica-under-test bound to the shared
	// network, with coverage recording enabled.
	NewReplica(net *netsim.Network) Replica
	// Check is the liveness/safety oracle, run after the trace and the
	// epilogue: a non-nil error is a workload-detected failure that is
	// not a crash.
	Check(r Replica) error
}

// Harness is one scripted replay of a protocol's trace.
type Harness struct {
	Net *netsim.Network
	R   Replica
	// Drops records which trace messages (by index) were lost to a
	// failed receive — the observable loss ordering, used by the
	// determinism tests.
	Drops []int

	p    Protocol
	wire libsim.NetEndpoint // staging endpoint the trace is sent from
}

// New stages a fresh replica plus sink endpoints for its peers and
// clients. Endpoint creation order (replica, sinks in Sinks() order,
// then the staging wire) is part of the determinism contract: same
// seed, same network state, same outcome.
func New(p Protocol) *Harness {
	net := netsim.New()
	h := &Harness{Net: net, R: p.NewReplica(net), p: p}
	for _, addr := range p.Sinks() {
		sink := net.NewEndpoint()
		sink.Bind(addr)
	}
	h.wire = net.NewEndpoint()
	return h
}

// Run replays the trace: stage one datagram, let the replica poll once,
// and on a failed receive drop what was on the wire. Crashes propagate
// as panics for the controller's monitor; the protocol's Check decides
// whether a surviving run still failed its workload.
func (h *Harness) Run() error {
	if err := h.R.Open(); err != nil {
		return err
	}
	addr := h.p.Addr()
	buf := make([]byte, 4096)
	for i, payload := range h.p.Trace() {
		if e := h.wire.SendTo(addr, payload); e != 0 {
			return fmt.Errorf("%s harness: stage datagram: errno %d", h.p.Name(), e)
		}
		if !h.R.PollOnce(buf) {
			// Zero-depth buffer: the datagram is lost.
			if h.Net.Drop(addr) {
				h.Drops = append(h.Drops, i)
			}
		}
	}
	h.R.Finish()
	return h.p.Check(h.R)
}

// Target adapts a protocol to the LFI controller. Each Start builds a
// fresh harness, so campaign workers run independently.
func Target(p Protocol) controller.Target {
	return controller.Target{
		Name: p.Name(),
		Start: func() (*libsim.C, func() error) {
			h := New(p)
			return h.R.Image(), h.Run
		},
	}
}

// TargetWithCoverage is Target plus per-run coverage merged into acc —
// the TargetWithCoverage shape the explorer consumes.
func TargetWithCoverage(p Protocol, acc *coverage.Tracker) controller.Target {
	return controller.Target{
		Name: p.Name(),
		Start: func() (*libsim.C, func() error) {
			h := New(p)
			return h.R.Image(), func() error {
				defer func() { acc.Merge(h.R.Coverage()) }()
				return h.Run()
			}
		},
	}
}
