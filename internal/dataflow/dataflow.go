// Package dataflow implements the intra-procedural return-value
// propagation analysis of §5: starting from the return register at a
// call site, it follows every copy of the returned value through
// registers and stack slots, and collects the literals the value (or any
// copy of it) is compared against, split into equality checks (Chk_eq)
// and inequality/range checks (Chk_ineq).
//
// The implementation is a standard forward may-analysis over the partial
// CFG: the lattice element is the set of locations (16 registers plus
// discovered stack slots) that may hold a copy of the return value; the
// meet is union; the transfer function generates copies through MOV,
// ST, and LD and kills overwritten locations. Iteration to a fixpoint
// subsumes the paper's "iterate through any loops as long as the set of
// copies increases".
//
// The same machinery runs a second lattice for errno copies (seeded by
// GETERR, the __errno_location load), implementing the side-effect
// analysis the paper describes as "virtually identical" to the
// return-value analysis.
package dataflow

import (
	"sort"

	"lfi/internal/cfg"
	"lfi/internal/isa"
)

// Result is the outcome of analyzing one call site.
type Result struct {
	ChkEq      map[int64]bool // literals checked via equality (==, !=)
	ChkIneq    map[int64]bool // literals checked via inequality (<, <=, >, >=)
	ErrnoChkEq map[int64]bool // errno literals checked via equality
	Iterations int            // fixpoint iterations (efficiency reporting)
}

// EqCodes returns the sorted equality-checked literals.
func (r Result) EqCodes() []int64 { return sortedKeys(r.ChkEq) }

// IneqCodes returns the sorted inequality-checked literals.
func (r Result) IneqCodes() []int64 { return sortedKeys(r.ChkIneq) }

// ErrnoCodes returns the sorted errno literals checked.
func (r Result) ErrnoCodes() []int64 { return sortedKeys(r.ErrnoChkEq) }

func sortedKeys(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// locSet is a bitmask over locations: bits 0..15 are registers, bits
// 16..63 are stack slots interned per analysis.
type locSet uint64

const regCount = 16

func regBit(r byte) locSet { return 1 << locSet(r) }

type slotTable struct {
	ids map[int32]uint
}

func (s *slotTable) bit(slot int32) (locSet, bool) {
	id, ok := s.ids[slot]
	if !ok {
		id = uint(len(s.ids)) + regCount
		if id >= 64 {
			return 0, false // too many distinct slots; ignore
		}
		s.ids[slot] = id
	}
	return 1 << locSet(id), true
}

// Fates extends Result with the fate of the returned value at the
// boundary of the analyzed region — the raw facts the interprocedural
// summary lattice (package callgraph) is built from. Fates over a
// truncated or indirect-branching graph are meaningless; callers must
// consult the graph's Indirect/Truncated flags before trusting them.
type Fates struct {
	Result
	// Propagates: a copy of the returned value may be live in R0 at a
	// RET, i.e. the caller may receive it as this function's own return.
	Propagates bool
	// Stored: a copy of the returned value may be written to a stack
	// slot, i.e. it may outlive the locations the analysis tracks.
	Stored bool
}

// Checked reports whether the returned value is compared-and-branched
// on at all — the check predicate for internal (CALLN) call sites,
// where no profile error-code set exists to classify against.
func (f Fates) Checked() bool { return len(f.ChkEq) > 0 || len(f.ChkIneq) > 0 }

// Dropped reports whether the returned value is provably discarded:
// never checked, never stored, and never propagated to the caller.
func (f Fates) Dropped() bool { return !f.Checked() && !f.Stored && !f.Propagates }

// Analyze runs the return-value (and errno) propagation analysis over a
// partial CFG whose entry is the first instruction after the call.
func Analyze(g *cfg.Graph) Result {
	res, _ := analyze(g)
	return res
}

// AnalyzeFates runs Analyze and additionally extracts the return-value
// fates at the region boundary. The caller is expected to pass a
// function-bounded graph (cfg.BuildFrom).
func AnalyzeFates(g *cfg.Graph) Fates {
	res, in := analyze(g)
	f := Fates{Result: res}
	for i, ins := range g.Insts {
		switch ins.Op {
		case isa.RET:
			if in[i]&regBit(0) != 0 {
				f.Propagates = true
			}
		case isa.ST:
			if in[i]&regBit(ins.Rs) != 0 {
				f.Stored = true
			}
		}
	}
	return f
}

// analyze is the shared fixpoint; it returns the result plus the
// per-instruction return-value copy sets for fate extraction.
func analyze(g *cfg.Graph) (Result, []locSet) {
	res := Result{
		ChkEq:      make(map[int64]bool),
		ChkIneq:    make(map[int64]bool),
		ErrnoChkEq: make(map[int64]bool),
	}
	n := g.Len()
	if n == 0 {
		return res, nil
	}
	slots := &slotTable{ids: make(map[int32]uint)}

	// in[i] / inE[i]: locations that may hold the return value / an
	// errno copy on entry to instruction i.
	in := make([]locSet, n)
	inE := make([]locSet, n)
	// Entry: R0 holds the freshly returned value.
	in[0] = regBit(0)

	// Predecessor lists for the meet.
	preds := make([][]int, n)
	for i, ss := range g.Succs {
		for _, s := range ss {
			preds[s] = append(preds[s], i)
		}
	}

	changed := true
	for changed {
		changed = false
		res.Iterations++
		for i := 0; i < n; i++ {
			var mIn, mInE locSet
			if i == 0 {
				mIn = regBit(0)
			}
			for _, p := range preds[i] {
				outP, outPE := transfer(g.Insts[p], in[p], inE[p], slots)
				mIn |= outP
				mInE |= outPE
			}
			if mIn != in[i] || mInE != inE[i] {
				in[i], inE[i] = mIn, mInE
				changed = true
			}
		}
		if res.Iterations > 4*n+8 {
			break // defensive bound; the lattice is finite so this should not trigger
		}
	}

	// Extract comparisons: a CMPI/TEST whose operand may hold the
	// return value, followed by a conditional branch, is a check.
	for i, ins := range g.Insts {
		switch ins.Op {
		case isa.CMPI:
			lit := int64(ins.Imm)
			if in[i]&regBit(ins.Rs) != 0 {
				classify(&res, g, i, lit, false)
			}
			if inE[i]&regBit(ins.Rs) != 0 {
				classify(&res, g, i, lit, true)
			}
		case isa.TEST:
			if in[i]&regBit(ins.Rs) != 0 {
				classify(&res, g, i, 0, false)
			}
			if inE[i]&regBit(ins.Rs) != 0 {
				classify(&res, g, i, 0, true)
			}
		}
	}
	return res, in
}

// classify records the literal of a comparison according to the
// conditional branch that consumes its flags.
func classify(res *Result, g *cfg.Graph, cmpIdx int, lit int64, isErrno bool) {
	for _, s := range g.Succs[cmpIdx] {
		br := g.Insts[s]
		if !br.IsCondBranch() {
			continue
		}
		if isErrno {
			if br.EqBranch() {
				res.ErrnoChkEq[lit] = true
			}
			continue
		}
		if br.EqBranch() {
			res.ChkEq[lit] = true
		} else {
			res.ChkIneq[lit] = true
		}
	}
}

// transfer applies one instruction to the (retval, errno) copy sets.
func transfer(ins isa.Inst, in, inE locSet, slots *slotTable) (locSet, locSet) {
	out, outE := in, inE
	kill := func(b locSet) { out &^= b; outE &^= b }
	switch ins.Op {
	case isa.MOVI, isa.ADDI:
		// A constant load or arithmetic result is no longer a copy.
		kill(regBit(ins.Rd))
	case isa.MOV:
		kill(regBit(ins.Rd))
		if in&regBit(ins.Rs) != 0 {
			out |= regBit(ins.Rd)
		}
		if inE&regBit(ins.Rs) != 0 {
			outE |= regBit(ins.Rd)
		}
	case isa.ST:
		if b, ok := slots.bit(ins.Imm); ok {
			kill(b)
			if in&regBit(ins.Rs) != 0 {
				out |= b
			}
			if inE&regBit(ins.Rs) != 0 {
				outE |= b
			}
		}
	case isa.LD:
		kill(regBit(ins.Rd))
		if b, ok := slots.bit(ins.Imm); ok {
			if in&b != 0 {
				out |= regBit(ins.Rd)
			}
			if inE&b != 0 {
				outE |= regBit(ins.Rd)
			}
		}
	case isa.CALL, isa.CALLN, isa.ICALL:
		// The callee's return clobbers R0; errno may also change, so
		// stale errno copies in R0 die with it.
		kill(regBit(0))
	case isa.GETERR:
		out &^= regBit(ins.Rd)
		outE |= regBit(ins.Rd)
	}
	return out, outE
}
