package dataflow

import (
	"testing"

	"lfi/internal/asm"
	"lfi/internal/cfg"
	"lfi/internal/isa"
)

// analyzeSite assembles one modelled call site and runs the analysis on
// its post-call window.
func analyzeSite(t *testing.T, spec asm.SiteSpec) Result {
	t.Helper()
	b := asm.NewBuilder("m")
	b.Func("f")
	b.EmitSite(spec)
	b.Ret()
	bin := b.MustBuild()
	off, ok := b.SiteOffset(spec.Label)
	if !ok {
		t.Fatal("site offset missing")
	}
	g := cfg.BuildPartial(bin, off+isa.InstSize, cfg.DefaultWindow)
	return Analyze(g)
}

func TestDirectEqualityCheck(t *testing.T) {
	res := analyzeSite(t, asm.SiteSpec{
		Label: "s", Callee: "read", Style: asm.CheckEq, Codes: []int64{-1, 0},
	})
	if !res.ChkEq[-1] || !res.ChkEq[0] {
		t.Fatalf("ChkEq = %v", res.EqCodes())
	}
	if len(res.ChkIneq) != 0 {
		t.Fatalf("spurious ineq %v", res.IneqCodes())
	}
}

func TestSignCheckIsInequality(t *testing.T) {
	res := analyzeSite(t, asm.SiteSpec{
		Label: "s", Callee: "close", Style: asm.CheckIneq,
	})
	if !res.ChkIneq[0] {
		t.Fatalf("ChkIneq = %v", res.IneqCodes())
	}
	if len(res.ChkEq) != 0 {
		t.Fatalf("spurious eq %v", res.EqCodes())
	}
}

func TestNullCheckIsEqualityAgainstZero(t *testing.T) {
	// test r0 + je — the compiled form of if (p == NULL).
	res := analyzeSite(t, asm.SiteSpec{
		Label: "s", Callee: "malloc", Style: asm.CheckEqZero,
	})
	if !res.ChkEq[0] {
		t.Fatalf("ChkEq = %v", res.EqCodes())
	}
}

func TestUncheckedSiteFindsNothing(t *testing.T) {
	res := analyzeSite(t, asm.SiteSpec{Label: "s", Callee: "read", Style: asm.CheckNone})
	if len(res.ChkEq) != 0 || len(res.ChkIneq) != 0 {
		t.Fatalf("unchecked site reported checks: %v %v", res.EqCodes(), res.IneqCodes())
	}
}

func TestCopyThroughRegisterAndStack(t *testing.T) {
	res := analyzeSite(t, asm.SiteSpec{
		Label: "s", Callee: "open", Style: asm.CheckEqViaCopy, Codes: []int64{-1},
	})
	if !res.ChkEq[-1] {
		t.Fatalf("copy chain lost the return value: %v", res.EqCodes())
	}
}

func TestCopyThroughMemorySignCheck(t *testing.T) {
	res := analyzeSite(t, asm.SiteSpec{
		Label: "s", Callee: "open", Style: asm.CheckIneqViaCopy,
	})
	if !res.ChkIneq[0] {
		t.Fatalf("spilled copy lost: %v", res.IneqCodes())
	}
}

func TestFillerDoesNotConfuse(t *testing.T) {
	res := analyzeSite(t, asm.SiteSpec{
		Label: "s", Callee: "read", Style: asm.CheckEq, Codes: []int64{-1}, Filler: 20,
	})
	if !res.ChkEq[-1] {
		t.Fatalf("filler broke tracking: %v", res.EqCodes())
	}
}

func TestHiddenIndirectCheckInvisible(t *testing.T) {
	res := analyzeSite(t, asm.SiteSpec{
		Label: "s", Callee: "open", Style: asm.CheckHiddenIndirect, Codes: []int64{-1},
	})
	if len(res.ChkEq) != 0 || len(res.ChkIneq) != 0 {
		t.Fatal("check behind indirect branch should be invisible to the analysis")
	}
}

func TestErrnoCheckDetected(t *testing.T) {
	res := analyzeSite(t, asm.SiteSpec{
		Label: "s", Callee: "read", Style: asm.CheckErrnoEq, Errnos: []int64{4}, // EINTR
	})
	if !res.ChkIneq[0] {
		t.Fatalf("retval sign check missing: %v", res.IneqCodes())
	}
	if !res.ErrnoChkEq[4] {
		t.Fatalf("errno check missing: %v", res.ErrnoCodes())
	}
}

func TestClobberedReturnRegisterNotTracked(t *testing.T) {
	// A second call kills r0; comparing r0 afterwards checks the NEW
	// call's value, not the first one's.
	b := asm.NewBuilder("m")
	b.Func("f")
	site := b.CallImport("read")
	b.CallImport("close")
	b.Cmpi(0, -1)
	b.J(isa.JE, "err")
	b.Label("err")
	b.Ret()
	bin := b.MustBuild()
	g := cfg.BuildPartial(bin, site+isa.InstSize, cfg.DefaultWindow)
	res := Analyze(g)
	if res.ChkEq[-1] {
		t.Fatal("comparison after clobbering call attributed to first call")
	}
}

func TestOverwrittenCopyNotTracked(t *testing.T) {
	b := asm.NewBuilder("m")
	b.Func("f")
	site := b.CallImport("read")
	b.Mov(4, 0)   // r4 is a copy
	b.Movi(4, 99) // ...until it is overwritten
	b.Cmpi(4, -1)
	b.J(isa.JE, "err")
	b.Label("err")
	b.Ret()
	bin := b.MustBuild()
	g := cfg.BuildPartial(bin, site+isa.InstSize, cfg.DefaultWindow)
	res := Analyze(g)
	if res.ChkEq[-1] {
		t.Fatal("dead copy still tracked")
	}
}

func TestLoopFixpointTerminatesAndFinds(t *testing.T) {
	// A retry loop: the comparison sits inside a loop whose back edge
	// re-enters before the check; the fixpoint must still attribute it.
	b := asm.NewBuilder("m")
	b.Func("f")
	site := b.CallImport("read")
	b.Label("loop")
	b.Mov(3, 0)
	b.Cmpi(3, -1)
	b.J(isa.JE, "loop") // retry on -1 (degenerate but legal)
	b.Ret()
	bin := b.MustBuild()
	g := cfg.BuildPartial(bin, site+isa.InstSize, cfg.DefaultWindow)
	res := Analyze(g)
	if !res.ChkEq[-1] {
		t.Fatalf("loop check lost: %v", res.EqCodes())
	}
	if res.Iterations < 1 {
		t.Fatal("no iterations recorded")
	}
}

func TestBranchKeepsCopiesOnBothArms(t *testing.T) {
	// The check may occur on only one arm of an earlier branch.
	b := asm.NewBuilder("m")
	b.Func("f")
	site := b.CallImport("read")
	b.Cmpi(5, 10) // unrelated comparison
	b.J(isa.JG, "arm2")
	b.Nop()
	b.J(isa.JMP, "join")
	b.Label("arm2")
	b.Cmpi(0, -1) // check on this arm only
	b.J(isa.JE, "join")
	b.Label("join")
	b.Ret()
	bin := b.MustBuild()
	g := cfg.BuildPartial(bin, site+isa.InstSize, cfg.DefaultWindow)
	res := Analyze(g)
	if !res.ChkEq[-1] {
		t.Fatalf("one-arm check lost: %v", res.EqCodes())
	}
	// The unrelated comparison on r5 must not be attributed.
	if res.ChkIneq[10] || res.ChkEq[10] {
		t.Fatal("unrelated comparison attributed to return value")
	}
}

func TestEmptyGraph(t *testing.T) {
	res := Analyze(&cfg.Graph{})
	if len(res.ChkEq)+len(res.ChkIneq) != 0 {
		t.Fatal("empty graph produced checks")
	}
}

func TestAnalyzeFates(t *testing.T) {
	build := func(emit func(b *asm.Builder)) (*isa.Binary, uint64) {
		b := asm.NewBuilder("m")
		b.Func("f")
		site := b.CallImport("read")
		emit(b)
		return b.MustBuild(), site
	}
	fatesOf := func(bin *isa.Binary, site uint64) Fates {
		sym := bin.Symbols[0]
		return AnalyzeFates(cfg.BuildFrom(bin, sym, site+isa.InstSize))
	}

	// The raw return value reaching RET propagates.
	bin, site := build(func(b *asm.Builder) { b.Ret() })
	f := fatesOf(bin, site)
	if !f.Propagates || f.Stored || f.Checked() || f.Dropped() {
		t.Fatalf("bare return: %+v, want propagates only", f)
	}

	// A copy moved into R0 through another register still propagates.
	bin, site = build(func(b *asm.Builder) {
		b.Mov(4, 0)
		b.Movi(0, 0)
		b.Mov(0, 4)
		b.Ret()
	})
	if f = fatesOf(bin, site); !f.Propagates {
		t.Fatalf("copied return: %+v, want propagates", f)
	}

	// Overwritten before RET: dropped.
	bin, site = build(func(b *asm.Builder) {
		b.Movi(0, 0)
		b.Ret()
	})
	if f = fatesOf(bin, site); !f.Dropped() || f.Propagates || f.Stored {
		t.Fatalf("overwritten return: %+v, want dropped", f)
	}

	// Spilled to a stack slot: stored, not dropped.
	bin, site = build(func(b *asm.Builder) {
		b.St(16, 0)
		b.Movi(0, 0)
		b.Ret()
	})
	if f = fatesOf(bin, site); !f.Stored || f.Dropped() {
		t.Fatalf("spilled return: %+v, want stored", f)
	}

	// Compared and branched on: checked.
	bin, site = build(func(b *asm.Builder) {
		b.Cmpi(0, -1)
		b.J(isa.JE, "err")
		b.Movi(0, 0)
		b.Ret()
		b.Label("err")
		b.Movi(0, -1)
		b.Ret()
	})
	if f = fatesOf(bin, site); !f.Checked() || f.Dropped() {
		t.Fatalf("checked return: %+v, want checked", f)
	}
}
