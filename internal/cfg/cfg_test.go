package cfg

import (
	"testing"

	"lfi/internal/asm"
	"lfi/internal/isa"
)

func TestPartialCFGFollowsBothBranchArms(t *testing.T) {
	b := asm.NewBuilder("m")
	b.Func("f")
	site := b.CallImport("read")
	b.Cmpi(0, -1)
	b.J(isa.JE, "err")
	b.Movi(1, 1) // fallthrough arm
	b.J(isa.JMP, "out")
	b.Label("err")
	b.Movi(1, 2) // error arm
	b.Label("out")
	b.Ret()
	bin := b.MustBuild()

	g := BuildPartial(bin, site+isa.InstSize, DefaultWindow)
	if g.Len() != 6 {
		t.Fatalf("graph has %d nodes, want 6", g.Len())
	}
	if g.Indirect != 0 || g.Truncated {
		t.Fatalf("unexpected indirect/truncated: %+v", g)
	}
	// The conditional branch node must have two successors.
	idx, ok := g.NodeAt(site + 2*isa.InstSize)
	if !ok {
		t.Fatal("branch node missing")
	}
	if len(g.Succs[idx]) != 2 {
		t.Fatalf("cond branch succs %v", g.Succs[idx])
	}
}

func TestPartialCFGStopsAtRet(t *testing.T) {
	b := asm.NewBuilder("m")
	b.Func("f")
	site := b.CallImport("read")
	b.Ret()
	b.Func("g") // instructions after f must not leak into f's CFG
	b.Movi(1, 1)
	b.Ret()
	bin := b.MustBuild()
	g := BuildPartial(bin, site+isa.InstSize, DefaultWindow)
	if g.Len() != 1 {
		t.Fatalf("CFG leaked past RET: %d nodes", g.Len())
	}
}

func TestPartialCFGStopsAtIndirectBranch(t *testing.T) {
	b := asm.NewBuilder("m")
	b.Func("f")
	site := b.CallImport("read")
	b.MoviLabel(7, "tgt")
	b.IJmp(7)
	b.Label("tgt")
	b.Cmpi(0, -1)
	b.J(isa.JE, "tgt2")
	b.Label("tgt2")
	b.Ret()
	bin := b.MustBuild()
	g := BuildPartial(bin, site+isa.InstSize, DefaultWindow)
	// movi + ijmp reachable; everything behind the ijmp is invisible.
	if g.Len() != 2 {
		t.Fatalf("indirect jump followed: %d nodes", g.Len())
	}
	if g.Indirect != 1 {
		t.Fatalf("indirect count %d", g.Indirect)
	}
}

func TestPartialCFGWindowTruncation(t *testing.T) {
	b := asm.NewBuilder("m")
	b.Func("f")
	site := b.CallImport("read")
	for i := 0; i < 50; i++ {
		b.Nop()
	}
	b.Ret()
	bin := b.MustBuild()
	g := BuildPartial(bin, site+isa.InstSize, 10)
	if g.Len() != 10 || !g.Truncated {
		t.Fatalf("window not enforced: len=%d truncated=%v", g.Len(), g.Truncated)
	}
}

func TestPartialCFGLoop(t *testing.T) {
	b := asm.NewBuilder("m")
	b.Func("f")
	site := b.CallImport("read")
	b.Label("loop")
	b.Cmpi(0, 0)
	b.J(isa.JNE, "loop")
	b.Ret()
	bin := b.MustBuild()
	g := BuildPartial(bin, site+isa.InstSize, DefaultWindow)
	if g.Len() != 3 {
		t.Fatalf("loop CFG %d nodes", g.Len())
	}
	// The back edge must exist: branch node's successors include loop head.
	brIdx, _ := g.NodeAt(site + 2*isa.InstSize)
	headIdx, _ := g.NodeAt(site + isa.InstSize)
	found := false
	for _, s := range g.Succs[brIdx] {
		if s == headIdx {
			found = true
		}
	}
	if !found {
		t.Fatal("back edge missing")
	}
}

func TestBuildFuncBounded(t *testing.T) {
	b := asm.NewBuilder("m")
	b.Func("f")
	b.Movi(0, 1)
	b.Ret()
	b.Func("g")
	b.Movi(0, 2)
	b.Ret()
	bin := b.MustBuild()
	sym, _ := bin.FindSymbol("f")
	g := BuildFunc(bin, sym)
	if g.Len() != 2 {
		t.Fatalf("BuildFunc crossed symbol boundary: %d nodes", g.Len())
	}
}

func TestCallsFallThrough(t *testing.T) {
	b := asm.NewBuilder("m")
	b.Func("f")
	site := b.CallImport("read")
	b.CallImport("close") // a second call: analysis window continues past it
	b.Movi(1, 1)
	b.Ret()
	bin := b.MustBuild()
	g := BuildPartial(bin, site+isa.InstSize, DefaultWindow)
	if g.Len() != 3 {
		t.Fatalf("call did not fall through: %d nodes", g.Len())
	}
}

func TestEmptyGraphOutOfRange(t *testing.T) {
	b := asm.NewBuilder("m")
	b.Func("f")
	b.Ret()
	bin := b.MustBuild()
	g := BuildPartial(bin, 4096, DefaultWindow)
	if g.Len() != 0 {
		t.Fatal("out-of-range start produced nodes")
	}
}
