// Package cfg builds control-flow graphs over synthetic binaries.
//
// The call-site analyzer needs a partial CFG of the instructions that
// follow a library call (the paper found a 100-instruction window
// sufficient, §5), and the library profiler needs a whole-function CFG.
// Indirect branches are not followed — the paper's prototype ignores
// them (only 0.13% of branches in its corpus were indirect) and the
// analyzer records their presence so accuracy studies can attribute
// misclassifications.
package cfg

import (
	"lfi/internal/isa"
)

// DefaultWindow is the paper's empirically-sufficient post-call window.
const DefaultWindow = 100

// Graph is a per-instruction CFG: node i is Insts[i]; Succs[i] lists
// successor node indices.
type Graph struct {
	Insts     []isa.Inst
	Succs     [][]int
	byOffset  map[uint64]int
	Indirect  int  // indirect branches encountered (edges not followed)
	Truncated bool // instruction budget exhausted before all paths ended
}

// NodeAt returns the node index of the instruction at a code offset.
func (g *Graph) NodeAt(off uint64) (int, bool) {
	i, ok := g.byOffset[off]
	return i, ok
}

// Len returns the number of instructions in the graph.
func (g *Graph) Len() int { return len(g.Insts) }

// BuildPartial constructs the partial CFG of up to window instructions
// reachable from start (typically the instruction after a call site).
// Control flow follows fall-through, direct conditional branches (both
// arms), and direct jumps; it stops at RET and at indirect branches.
func BuildPartial(b *isa.Binary, start uint64, window int) *Graph {
	return build(b, start, window, 0, uint64(len(b.Code)))
}

// BuildFunc constructs the CFG of one function symbol, bounded by the
// symbol's extent.
func BuildFunc(b *isa.Binary, sym isa.Symbol) *Graph {
	limit := int(sym.Size / isa.InstSize)
	if limit == 0 {
		limit = 1
	}
	return build(b, sym.Off, limit, sym.Off, sym.Off+sym.Size)
}

// BuildFrom constructs the CFG reachable from start, bounded by the
// enclosing function symbol's extent instead of a fixed window. The
// budget is the whole function, so — unlike BuildPartial — the walk can
// only be Truncated by the symbol boundary itself, never by an
// instruction count; the interprocedural analyzer (package callgraph)
// uses this to see checks the paper's 100-instruction window misses.
func BuildFrom(b *isa.Binary, sym isa.Symbol, start uint64) *Graph {
	limit := int(sym.Size / isa.InstSize)
	if limit == 0 {
		limit = 1
	}
	return build(b, start, limit, sym.Off, sym.Off+sym.Size)
}

func build(b *isa.Binary, start uint64, window int, lo, hi uint64) *Graph {
	g := &Graph{byOffset: make(map[uint64]int)}
	if start < lo || start >= hi {
		return g
	}
	// Breadth-first discovery of reachable instructions, bounded by
	// the window budget.
	queue := []uint64{start}
	seen := map[uint64]bool{start: true}
	for len(queue) > 0 && len(g.Insts) < window {
		off := queue[0]
		queue = queue[1:]
		in, err := b.DecodeAt(off)
		if err != nil {
			continue
		}
		idx := len(g.Insts)
		g.Insts = append(g.Insts, in)
		g.byOffset[off] = idx
		for _, succ := range successors(in, lo, hi, g) {
			if !seen[succ] {
				seen[succ] = true
				queue = append(queue, succ)
			}
		}
	}
	if len(queue) > 0 {
		g.Truncated = true
	}
	// Second pass: resolve successor offsets to node indices (some
	// targets may have fallen outside the window).
	g.Succs = make([][]int, len(g.Insts))
	for i, in := range g.Insts {
		for _, off := range successors(in, lo, hi, nil) {
			if j, ok := g.byOffset[off]; ok {
				g.Succs[i] = append(g.Succs[i], j)
			}
		}
	}
	return g
}

// successors computes the static successor offsets of an instruction.
// When g is non-nil, indirect branches are tallied on it.
func successors(in isa.Inst, lo, hi uint64, g *Graph) []uint64 {
	next := in.Offset + isa.InstSize
	var out []uint64
	addNext := func() {
		if next >= lo && next < hi {
			out = append(out, next)
		}
	}
	addTarget := func() {
		t := uint64(uint32(in.Imm))
		if t >= lo && t < hi {
			out = append(out, t)
		}
	}
	switch {
	case in.Op == isa.RET:
		// no successors
	case in.Op == isa.JMP:
		addTarget()
	case in.Op == isa.IJMP:
		if g != nil {
			g.Indirect++
		}
	case in.Op == isa.ICALL:
		if g != nil {
			g.Indirect++
		}
		addNext() // the call returns; its target is unknown
	case in.IsCondBranch():
		addTarget()
		addNext()
	default:
		addNext()
	}
	return out
}
