package profile

import (
	"bytes"
	"reflect"
	"testing"

	"lfi/internal/errno"
	"lfi/internal/libspec"
)

func libcProfile(t *testing.T) *Profile {
	t.Helper()
	return ProfileBinary(libspec.BuildLibc())
}

func TestProfilerInfersReadReturns(t *testing.T) {
	p := libcProfile(t)
	fp := p.Func("read")
	if fp == nil {
		t.Fatal("read not profiled")
	}
	// The paper's example: read() can return -1, 0, or a positive
	// (computed) number.
	if !fp.HasComputed() {
		t.Error("computed success path not found")
	}
	minus1 := fp.constReturn(-1)
	if minus1 == nil {
		t.Fatal("-1 return not found")
	}
	wantErrnos := []errno.Errno{errno.EINTR, errno.EIO, errno.EAGAIN, errno.EBADF}
	sortErrnos(wantErrnos)
	if !reflect.DeepEqual(minus1.Errnos, wantErrnos) {
		t.Errorf("read(-1) errnos = %v, want %v", minus1.Errnos, wantErrnos)
	}
	zero := fp.constReturn(0)
	if zero == nil || len(zero.Errnos) != 0 {
		t.Errorf("read(0) should exist with no errno: %+v", zero)
	}
}

func TestErrorCodesHeuristic(t *testing.T) {
	p := libcProfile(t)
	cases := map[string][]int64{
		"read":   {-1, 0}, // EOF counts: computed success exists
		"close":  {-1},    // 0 is close's success, not an error
		"malloc": {0},     // NULL with ENOMEM
		"fopen":  {0},
		"setenv": {-1},
	}
	for fn, want := range cases {
		got := p.Func(fn).ErrorCodes()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ErrorCodes(%s) = %v, want %v", fn, got, want)
		}
	}
}

func TestErrnosFor(t *testing.T) {
	p := libcProfile(t)
	es := p.Func("malloc").ErrnosFor(0)
	if len(es) != 1 || es[0] != errno.ENOMEM {
		t.Fatalf("malloc NULL errnos = %v", es)
	}
	if p.Func("malloc").ErrnosFor(-1) != nil {
		t.Fatal("nonexistent code has errnos")
	}
}

func TestProfilerCoversAllLibcFunctions(t *testing.T) {
	p := libcProfile(t)
	for _, spec := range libspec.Libc() {
		fp := p.Func(spec.Name)
		if fp == nil {
			t.Errorf("%s not profiled", spec.Name)
			continue
		}
		// Every modelled error return must be recovered.
		for _, er := range spec.Errors {
			r := fp.constReturn(er.Ret)
			if r == nil {
				t.Errorf("%s: error return %d not inferred", spec.Name, er.Ret)
				continue
			}
			if er.SetsErrno {
				for _, e := range er.Errnos {
					if !containsErrno(r.Errnos, errno.Errno(e)) {
						t.Errorf("%s ret %d: errno %v not inferred", spec.Name, er.Ret, errno.Errno(e))
					}
				}
			}
		}
		// And the success behaviour.
		if spec.ComputedSuccess && !fp.HasComputed() {
			t.Errorf("%s: computed success not inferred", spec.Name)
		}
		if !spec.ComputedSuccess && fp.constReturn(spec.Success) == nil {
			t.Errorf("%s: constant success %d not inferred", spec.Name, spec.Success)
		}
	}
}

func TestProfilerSoundness(t *testing.T) {
	// Property (DESIGN.md): every profile entry corresponds to a
	// modelled behaviour — no invented returns.
	p := libcProfile(t)
	for _, spec := range libspec.Libc() {
		fp := p.Func(spec.Name)
		for _, r := range fp.Returns {
			if !r.Const {
				if !spec.ComputedSuccess {
					t.Errorf("%s: invented computed return", spec.Name)
				}
				continue
			}
			ok := !spec.ComputedSuccess && r.Value == spec.Success
			for _, er := range spec.Errors {
				if er.Ret == r.Value {
					ok = true
				}
			}
			if !ok {
				t.Errorf("%s: invented return %d", spec.Name, r.Value)
			}
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	p := libcProfile(t)
	data := p.Serialize()
	p2, err := Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, data)
	}
	if p2.Lib != p.Lib {
		t.Fatalf("lib name %q", p2.Lib)
	}
	if !reflect.DeepEqual(p.FuncNames(), p2.FuncNames()) {
		t.Fatalf("func names differ")
	}
	for _, fn := range p.FuncNames() {
		if !reflect.DeepEqual(p.Func(fn).Returns, p2.Func(fn).Returns) {
			t.Errorf("%s: returns differ:\n%+v\nvs\n%+v", fn, p.Func(fn).Returns, p2.Func(fn).Returns)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(bytes.NewReader([]byte("<profile"))); err == nil {
		t.Fatal("truncated XML accepted")
	}
	bad := []byte(`<profile lib="x"><function name="f"><return value="zz"/></function></profile>`)
	if _, err := Parse(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad return value accepted")
	}
	bad2 := []byte(`<profile lib="x"><function name="f"><return value="0"><errno>EWHAT</errno></return></function></profile>`)
	if _, err := Parse(bytes.NewReader(bad2)); err == nil {
		t.Fatal("bad errno accepted")
	}
}

func TestXmlAprProfiles(t *testing.T) {
	px := ProfileBinary(libspec.BuildLibxml())
	if got := px.Func("xmlNewTextWriterDoc").ErrorCodes(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("xmlNewTextWriterDoc error codes %v", got)
	}
	pa := ProfileBinary(libspec.BuildLibapr())
	codes := pa.Func("apr_file_read").ErrorCodes()
	if len(codes) != 2 {
		t.Fatalf("apr_file_read error codes %v", codes)
	}
}
