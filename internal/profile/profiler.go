package profile

import (
	"lfi/internal/cfg"
	"lfi/internal/errno"
	"lfi/internal/isa"
)

// The profiler performs the two §2 analyses on a library binary:
//
//  1. return-code inference: which constant values (and whether any
//     computed value) each exported function can return, found by
//     abstract interpretation of the function body with constant
//     propagation on the return register; and
//
//  2. side-effect inference: which errno values can accompany each
//     return, found by tracking SETERRI stores (the __errno_location
//     write) along the paths leading to each return.

// absVal is the constant-propagation lattice: bottom (unset) is not
// needed; a value is either a known constant or top ("computed").
type absVal struct {
	known bool
	v     int64
}

var top = absVal{}

type pstate struct {
	regs  [16]absVal
	errno int64 // 0 = not set on this path
}

// ProfileBinary analyzes every exported function of a library binary
// and returns its fault profile.
func ProfileBinary(b *isa.Binary) *Profile {
	p := New(b.Name)
	for _, sym := range b.Symbols {
		profileFunc(p, b, sym)
	}
	return p
}

// maxVisitsPerNode bounds path enumeration in the presence of loops.
const maxVisitsPerNode = 8

func profileFunc(p *Profile, b *isa.Binary, sym isa.Symbol) {
	g := cfg.BuildFunc(b, sym)
	if g.Len() == 0 {
		p.Funcs[sym.Name] = &FuncProfile{Name: sym.Name}
		return
	}
	visits := make([]int, g.Len())
	var walk func(node int, st pstate)
	walk = func(node int, st pstate) {
		if visits[node] >= maxVisitsPerNode {
			return
		}
		visits[node]++
		defer func() { visits[node]-- }()
		in := g.Insts[node]
		switch in.Op {
		case isa.MOVI:
			st.regs[in.Rd] = absVal{known: true, v: int64(in.Imm)}
		case isa.MOV:
			st.regs[in.Rd] = st.regs[in.Rs]
		case isa.ADDI:
			if src := st.regs[in.Rs]; src.known {
				st.regs[in.Rd] = absVal{known: true, v: src.v + int64(in.Imm)}
			} else {
				st.regs[in.Rd] = top
			}
		case isa.LD, isa.GETERR:
			st.regs[in.Rd] = top
		case isa.CALL, isa.CALLN, isa.ICALL:
			st.regs[0] = top
		case isa.SETERRI:
			st.errno = int64(in.Imm)
		case isa.RET:
			r0 := st.regs[0]
			ret := Return{Const: r0.known, Value: r0.v}
			if st.errno != 0 {
				ret.Errnos = []errno.Errno{errno.Errno(st.errno)}
			}
			// A computed ADDI over an unknown argument is "computed"
			// even when our entry state pessimistically starts regs
			// at top; record either way.
			if !r0.known {
				ret.Const = false
			}
			p.add(sym.Name, ret)
			return
		}
		for _, s := range g.Succs[node] {
			walk(s, st)
		}
	}
	entry, ok := g.NodeAt(sym.Off)
	if !ok {
		entry = 0
	}
	var st pstate
	for i := range st.regs {
		st.regs[i] = top // arguments and scratch start unknown
	}
	walk(entry, st)
	if p.Funcs[sym.Name] == nil {
		p.Funcs[sym.Name] = &FuncProfile{Name: sym.Name}
	}
}
