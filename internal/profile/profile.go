// Package profile defines library fault profiles and the automated
// library profiler (§2 of the paper).
//
// A fault profile records, per exported library function, the return
// values the function can produce and the errno side effects that
// accompany each error return — e.g. read() returns -1 with errno set to
// EINTR, EIO, or EAGAIN, returns 0 at end-of-file, or returns a positive
// (computed) byte count. The profiler infers profiles by static analysis
// of library binaries; profiles serialize to XML, matching the paper's
// libc.profile / libssl.profile artifacts.
package profile

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"lfi/internal/errno"
)

// Return is one possible return behaviour of a library function.
type Return struct {
	Const  bool  // the return value is a known constant
	Value  int64 // valid when Const
	Errnos []errno.Errno
}

// FuncProfile is the fault profile of one exported function.
type FuncProfile struct {
	Name    string
	Returns []Return
}

// constReturn finds the Return entry for a constant value.
func (f *FuncProfile) constReturn(v int64) *Return {
	for i := range f.Returns {
		if f.Returns[i].Const && f.Returns[i].Value == v {
			return &f.Returns[i]
		}
	}
	return nil
}

// HasComputed reports whether the function can return a computed
// (non-constant) value — its success path for functions like read.
func (f *FuncProfile) HasComputed() bool {
	for _, r := range f.Returns {
		if !r.Const {
			return true
		}
	}
	return false
}

// ErrorCodes returns the constant return values a caller must treat as
// errors — the analyzer's E set. A constant is an error code when the
// library sets errno alongside it, or when it is a 0 return coexisting
// with a computed success (the read()-returns-0-at-EOF case, which
// callers must also handle).
func (f *FuncProfile) ErrorCodes() []int64 {
	var out []int64
	for _, r := range f.Returns {
		if !r.Const {
			continue
		}
		if len(r.Errnos) > 0 {
			out = append(out, r.Value)
		} else if r.Value == 0 && f.HasComputed() {
			out = append(out, r.Value)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ErrnosFor returns the errno side effects of one error return value.
func (f *FuncProfile) ErrnosFor(code int64) []errno.Errno {
	if r := f.constReturn(code); r != nil {
		return r.Errnos
	}
	return nil
}

// Profile is the fault profile of one library.
type Profile struct {
	Lib   string
	Funcs map[string]*FuncProfile
}

// New creates an empty profile for a library.
func New(lib string) *Profile {
	return &Profile{Lib: lib, Funcs: make(map[string]*FuncProfile)}
}

// Func returns the profile of a function, or nil.
func (p *Profile) Func(name string) *FuncProfile { return p.Funcs[name] }

// FuncNames returns the profiled function names, sorted.
func (p *Profile) FuncNames() []string {
	out := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// add records one observed (return, errno) behaviour.
func (p *Profile) add(fn string, ret Return) {
	fp := p.Funcs[fn]
	if fp == nil {
		fp = &FuncProfile{Name: fn}
		p.Funcs[fn] = fp
	}
	if !ret.Const {
		if !fp.HasComputed() {
			fp.Returns = append(fp.Returns, Return{})
		}
		return
	}
	if r := fp.constReturn(ret.Value); r != nil {
		for _, e := range ret.Errnos {
			if !containsErrno(r.Errnos, e) {
				r.Errnos = append(r.Errnos, e)
			}
		}
		sortErrnos(r.Errnos)
		return
	}
	sortErrnos(ret.Errnos)
	fp.Returns = append(fp.Returns, ret)
	sort.Slice(fp.Returns, func(i, j int) bool {
		a, b := fp.Returns[i], fp.Returns[j]
		if a.Const != b.Const {
			return a.Const
		}
		return a.Value < b.Value
	})
}

func containsErrno(list []errno.Errno, e errno.Errno) bool {
	for _, x := range list {
		if x == e {
			return true
		}
	}
	return false
}

func sortErrnos(list []errno.Errno) {
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
}

// --- XML serialization -------------------------------------------------------

type xmlProfile struct {
	XMLName xml.Name  `xml:"profile"`
	Lib     string    `xml:"lib,attr"`
	Funcs   []xmlFunc `xml:"function"`
}

type xmlFunc struct {
	Name    string      `xml:"name,attr"`
	Returns []xmlReturn `xml:"return"`
}

type xmlReturn struct {
	Value    string   `xml:"value,attr,omitempty"`
	Computed bool     `xml:"computed,attr,omitempty"`
	Errnos   []string `xml:"errno"`
}

// Serialize writes the profile as XML.
func (p *Profile) Serialize() []byte {
	doc := xmlProfile{Lib: p.Lib}
	for _, name := range p.FuncNames() {
		fp := p.Funcs[name]
		xf := xmlFunc{Name: name}
		for _, r := range fp.Returns {
			xr := xmlReturn{}
			if r.Const {
				xr.Value = fmt.Sprint(r.Value)
			} else {
				xr.Computed = true
			}
			for _, e := range r.Errnos {
				xr.Errnos = append(xr.Errnos, e.String())
			}
			xf.Returns = append(xf.Returns, xr)
		}
		doc.Funcs = append(doc.Funcs, xf)
	}
	var b bytes.Buffer
	enc := xml.NewEncoder(&b)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		panic(err) // the structure above always encodes
	}
	b.WriteString("\n")
	return b.Bytes()
}

// Parse reads a profile from XML.
func Parse(r io.Reader) (*Profile, error) {
	var doc xmlProfile
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("profile: %v", err)
	}
	p := New(doc.Lib)
	for _, xf := range doc.Funcs {
		for _, xr := range xf.Returns {
			ret := Return{}
			if !xr.Computed {
				var v int64
				if _, err := fmt.Sscanf(xr.Value, "%d", &v); err != nil {
					return nil, fmt.Errorf("profile: function %s: bad return value %q", xf.Name, xr.Value)
				}
				ret.Const, ret.Value = true, v
			}
			for _, es := range xr.Errnos {
				e, ok := errno.Parse(es)
				if !ok {
					return nil, fmt.Errorf("profile: function %s: unknown errno %q", xf.Name, es)
				}
				ret.Errnos = append(ret.Errnos, e)
			}
			p.add(xf.Name, ret)
		}
		if p.Funcs[xf.Name] == nil {
			p.Funcs[xf.Name] = &FuncProfile{Name: xf.Name}
		}
	}
	return p, nil
}
