package pbft

import "lfi/internal/system"

// SystemName is the registry name of the scripted PBFT replica harness
// (the binary itself is named bft/simple-server).
const SystemName = "pbft"

// The descriptor makes the PBFT replica harness visible to every
// registry-driven entry point; see internal/system. The view-change
// crash is WindowOnly: losing only the REQUEST or only the PRE-PREPARE
// is repaired by the protocol, so it is reachable solely through the
// explorer's occurrence-window mutants — the conformance test enforces
// that no non-window scenario finds it.
func init() {
	system.Register(&system.Descriptor{
		Name:               SystemName,
		Workload:           "scripted deterministic replica-trace harness (one committed operation, then a view change)",
		Binary:             Binary,
		Target:             Target,
		TargetWithCoverage: TargetWithCoverage,
		Profiles:           system.DefaultProfiles,
		StockBugs: []system.StockBug{
			{Match: "fwrite(NULL FILE*)", Note: "shutdown checkpoint's unchecked fopen crashes the following fwrite"},
			{Match: "view change", Note: "NEW-VIEW dereferences a committed entry with no content after losing both REQUEST and PRE-PREPARE", WindowOnly: true},
		},
	})
}
