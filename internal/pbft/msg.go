// Package pbft implements Practical Byzantine Fault Tolerance (Castro &
// Liskov) over the simulated network, as the distributed target system
// of the paper's evaluation (§7.1, §7.3, Figure 3).
//
// The implementation covers the normal-case three-phase protocol
// (pre-prepare, prepare, commit with 2f and 2f+1 quorums), client
// interaction with f+1 matching replies and retransmission, periodic
// checkpointing, and view changes. All network I/O goes through the
// simulated sendto/recvfrom calls, so LFI scenarios can degrade the
// network, silence replicas, or stage rotation attacks.
//
// Two Table 1 bugs are seeded, mirroring the paper:
//
//   - the shutdown path writes a checkpoint through a FILE* obtained
//     from an unchecked fopen — fwrite(NULL) crashes;
//   - the release build ignores sendto failures (the debug build halts
//     on them), so under message loss a replica can learn that a
//     sequence number committed without ever holding the request
//     content; the view-change code then dereferences the missing
//     committed message and crashes.
package pbft

import (
	"encoding/json"
	"fmt"
)

// Message types.
const (
	TypeRequest    = "REQUEST"
	TypePrePrepare = "PRE-PREPARE"
	TypePrepare    = "PREPARE"
	TypeCommit     = "COMMIT"
	TypeReply      = "REPLY"
	TypeViewChange = "VIEW-CHANGE"
	TypeNewView    = "NEW-VIEW"
)

// Msg is the wire format of every PBFT message.
type Msg struct {
	Type    string `json:"t"`
	View    int    `json:"v,omitempty"`
	Seq     int    `json:"n,omitempty"`
	Replica int    `json:"r"`
	Client  string `json:"c,omitempty"`
	ReqID   int64  `json:"id,omitempty"`
	Op      string `json:"op,omitempty"`
	Digest  string `json:"d,omitempty"`
	Result  string `json:"res,omitempty"`
}

// Encode serializes the message.
func (m Msg) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("pbft: marshal: %v", err))
	}
	return b
}

// DecodeMsg parses one datagram; ok is false for garbage.
func DecodeMsg(b []byte) (Msg, bool) {
	var m Msg
	if err := json.Unmarshal(b, &m); err != nil {
		return Msg{}, false
	}
	return m, m.Type != ""
}

// digest computes the request digest used in protocol messages.
func digest(client string, reqID int64, op string) string {
	var h uint64 = 14695981039346656037
	for _, b := range []byte(fmt.Sprintf("%s|%d|%s", client, reqID, op)) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}

// ReplicaAddr returns the network address of replica i.
func ReplicaAddr(i int) string { return fmt.Sprintf("replica-%d", i) }
