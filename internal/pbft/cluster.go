package pbft

import (
	"fmt"
	"time"

	"lfi/internal/core"
	"lfi/internal/libsim"
	"lfi/internal/netsim"
	"lfi/internal/scenario"
)

// Cluster wires 3f+1 replicas and one client over a fresh simulated
// network — the paper's f=1, four-replica setup plus simple_client.
type Cluster struct {
	F        int
	Net      *netsim.Network
	Replicas []*Replica
	Client   *Client
	runtimes []*core.Runtime
}

// NewCluster builds (but does not start) a cluster of the given build.
func NewCluster(f int, build Build) *Cluster {
	net := netsim.New()
	cl := &Cluster{F: f, Net: net}
	for i := 0; i < 3*f+1; i++ {
		cl.Replicas = append(cl.Replicas, NewReplica(i, f, net, build))
	}
	cl.Client = NewClient("client-0", f, net)
	return cl
}

// InstallScenario compiles and installs the same injection scenario on
// every replica (each replica is its own process with its own runtime).
// Call before Start.
func (cl *Cluster) InstallScenario(s *scenario.Scenario, opts ...core.Option) error {
	for i, r := range cl.Replicas {
		perReplica := append([]core.Option{core.WithSeed(int64(100 + i))}, opts...)
		rt, err := core.New(r.C, s, perReplica...)
		if err != nil {
			return fmt.Errorf("pbft: replica %d: %w", i, err)
		}
		rt.Install()
		cl.runtimes = append(cl.runtimes, rt)
	}
	return nil
}

// Runtimes returns the per-replica runtimes installed by InstallScenario.
func (cl *Cluster) Runtimes() []*core.Runtime { return cl.runtimes }

// Start launches every replica and the client.
func (cl *Cluster) Start() error {
	for _, r := range cl.Replicas {
		if err := r.Start(); err != nil {
			return err
		}
	}
	return cl.Client.Start()
}

// Stop shuts everything down. Replica crashes raised during shutdown
// (the checkpoint bug) are collected, not propagated.
func (cl *Cluster) Stop() {
	for _, r := range cl.Replicas {
		r.Stop()
	}
	cl.Client.Close()
	for _, rt := range cl.runtimes {
		rt.Uninstall()
	}
}

// RunWorkload submits n sequential operations and returns how many
// completed and the elapsed time.
func (cl *Cluster) RunWorkload(n int, perOp time.Duration) (completed int, elapsed time.Duration) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, ok := cl.Client.Invoke(fmt.Sprintf("op-%d", i), perOp); ok {
			completed++
		}
	}
	return completed, time.Since(start)
}

// RunPaced is the throughput measurement behind Figure 3 and the DoS
// study: n operations with client think time between them (the paper's
// simple_client pacing). It returns the completed count and the mean
// per-operation latency including think time; throughput comparisons
// divide these latencies.
func (cl *Cluster) RunPaced(n int, think, perOp time.Duration) (completed int, perOpLatency time.Duration) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, ok := cl.Client.Invoke(fmt.Sprintf("op-%d", i), perOp); ok {
			completed++
		}
		time.Sleep(think)
	}
	elapsed := time.Since(start)
	if completed == 0 {
		return 0, elapsed
	}
	return completed, elapsed / time.Duration(completed)
}

// Crashes returns the crash observed on each replica (nil entries for
// healthy replicas).
func (cl *Cluster) Crashes() []*libsim.Crash {
	out := make([]*libsim.Crash, len(cl.Replicas))
	for i, r := range cl.Replicas {
		out[i] = r.Crash()
	}
	return out
}

// FirstCrash returns the first replica crash, if any.
func (cl *Cluster) FirstCrash() *libsim.Crash {
	for _, c := range cl.Crashes() {
		if c != nil {
			return c
		}
	}
	return nil
}

// AgreeOnPrefix verifies the PBFT safety property over the executed
// operation logs: every pair of correct replicas agrees on the common
// prefix. It returns an error describing the first divergence.
func (cl *Cluster) AgreeOnPrefix() error {
	logs := make([][]string, 0, len(cl.Replicas))
	for _, r := range cl.Replicas {
		if r.Crash() == nil {
			logs = append(logs, r.State())
		}
	}
	for i := 1; i < len(logs); i++ {
		a, b := logs[0], logs[i]
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for j := 0; j < n; j++ {
			if a[j] != b[j] {
				return fmt.Errorf("pbft: divergence at seq %d: %q vs %q", j+1, a[j], b[j])
			}
		}
	}
	return nil
}
