package pbft

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"lfi/internal/core"
	"lfi/internal/libsim"
	"lfi/internal/scenario"
)

func startCluster(t *testing.T, build Build) *Cluster {
	t.Helper()
	cl := NewCluster(1, build)
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestNormalCaseCommits(t *testing.T) {
	cl := startCluster(t, BuildDebug)
	defer cl.Stop()
	done, _ := cl.RunWorkload(10, 2*time.Second)
	if done != 10 {
		t.Fatalf("completed %d/10", done)
	}
	// Give the cluster a beat to finish executing everywhere.
	time.Sleep(50 * time.Millisecond)
	if err := cl.AgreeOnPrefix(); err != nil {
		t.Fatal(err)
	}
	// At least 2f+1 replicas must have executed all ops.
	executed := 0
	for _, r := range cl.Replicas {
		if r.Executed() >= 10 {
			executed++
		}
	}
	if executed < 3 {
		t.Fatalf("only %d replicas executed everything", executed)
	}
}

func TestDuplicateRequestReturnsCachedReply(t *testing.T) {
	cl := startCluster(t, BuildDebug)
	defer cl.Stop()
	if _, ok := cl.Client.Invoke("op-a", 2*time.Second); !ok {
		t.Fatal("first invoke failed")
	}
	// Re-sending the same reqID must not re-execute: issue a second
	// op, then compare executed counts (1 extra only).
	if _, ok := cl.Client.Invoke("op-b", 2*time.Second); !ok {
		t.Fatal("second invoke failed")
	}
	time.Sleep(50 * time.Millisecond)
	for _, r := range cl.Replicas {
		if r.Executed() > 2 {
			t.Fatalf("replica %d executed %d ops (duplicates re-executed)", r.ID, r.Executed())
		}
	}
}

func TestProgressWithOneSilencedReplica(t *testing.T) {
	// f=1: the cluster must commit with one replica silenced.
	cl := NewCluster(1, BuildDebug)
	silence, err := scenario.ParseString(`<scenario name="silence-R3">
	  <trigger id="always" class="CallCountTrigger"><args><from>1</from></args></trigger>
	  <function name="sendto" return="-1" errno="EHOSTUNREACH"><reftrigger ref="always" /></function>
	  <function name="recvfrom" return="-1" errno="EINTR"><reftrigger ref="always" /></function>
	</scenario>`)
	if err != nil {
		t.Fatal(err)
	}
	// Install only on replica 3.
	rt, err := core.New(cl.Replicas[3].C, silence)
	if err != nil {
		t.Fatal(err)
	}
	rt.Install()
	defer rt.Uninstall()
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	done, _ := cl.RunWorkload(5, 2*time.Second)
	if done != 5 {
		t.Fatalf("completed %d/5 with one silenced replica", done)
	}
	if cl.Replicas[3].Executed() != 0 {
		t.Fatal("silenced replica executed operations")
	}
}

func TestSafetyUnderRandomLoss(t *testing.T) {
	// DESIGN.md property: under any injected loss pattern, correct
	// replicas never diverge on the committed prefix. Uses the
	// release build — the debug build deliberately halts on the first
	// failed send (that is the paper's point about the two builds).
	cl := NewCluster(1, BuildRelease)
	loss, err := scenario.ParseString(`<scenario name="loss-20">
	  <trigger id="p" class="RandomTrigger"><args><probability>0.2</probability></args></trigger>
	  <function name="sendto" return="-1" errno="EAGAIN"><reftrigger ref="p" /></function>
	</scenario>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.InstallScenario(loss); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	done, _ := cl.RunWorkload(8, 3*time.Second)
	// Liveness is best-effort under loss (a replica may even trip the
	// seeded view-change bug); the property under test is safety.
	if done < 4 {
		t.Fatalf("completed only %d/8 under 20%% loss (crashes: %v)", done, cl.Crashes())
	}
	time.Sleep(50 * time.Millisecond)
	if err := cl.AgreeOnPrefix(); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownCheckpointBug(t *testing.T) {
	// The Table 1 PBFT bug: a failed fopen at shutdown crashes the
	// replica in fwrite. Inject fopen=0 only at the shutdown call
	// site, as the analyzer-generated scenario does.
	_, offsets := Binary()
	doc := fmt.Sprintf(`<scenario name="pbft-shutdown-fopen">
	  <trigger id="cs" class="CallStackTrigger">
	    <args><frame><module>%s</module><offset>%x</offset></frame></args>
	  </trigger>
	  <function name="fopen" retval="0" errno="EINVAL"><reftrigger ref="cs" /></function>
	</scenario>`, ModuleServer, offsets["sd_fopen"])
	s, err := scenario.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(1, BuildDebug)
	if err := cl.InstallScenario(s); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	cl.RunWorkload(2, 2*time.Second)
	cl.Stop()
	crash := cl.FirstCrash()
	if crash == nil {
		t.Fatal("no crash at shutdown")
	}
	if crash.Kind != libsim.Segfault || !strings.Contains(crash.Reason, "fwrite(NULL FILE*)") {
		t.Fatalf("unexpected crash: %v", crash)
	}
}

func TestPeriodicCheckpointFopenFailureTolerated(t *testing.T) {
	// The periodic checkpoint path checks its fopen: injecting there
	// must not crash anything.
	_, offsets := Binary()
	doc := fmt.Sprintf(`<scenario name="pbft-ckpt-fopen">
	  <trigger id="cs" class="CallStackTrigger">
	    <args><frame><module>%s</module><offset>%x</offset></frame></args>
	  </trigger>
	  <function name="fopen" retval="0" errno="EMFILE"><reftrigger ref="cs" /></function>
	</scenario>`, ModuleServer, offsets["cp_fopen_ok"])
	s, err := scenario.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(1, BuildDebug)
	if err := cl.InstallScenario(s); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	done, _ := cl.RunWorkload(10, 2*time.Second) // crosses checkpointEvery
	cl.Stop()
	if done != 10 {
		t.Fatalf("completed %d/10", done)
	}
	if crash := cl.FirstCrash(); crash != nil {
		t.Fatalf("checked checkpoint path crashed: %v", crash)
	}
}

func TestViewChangeOnSilentPrimary(t *testing.T) {
	// Silence the primary (R0): the cluster must elect a new view and
	// keep serving.
	cl := NewCluster(1, BuildDebug)
	silence, err := scenario.ParseString(`<scenario name="silence-R0">
	  <trigger id="always" class="CallCountTrigger"><args><from>1</from></args></trigger>
	  <function name="sendto" return="-1" errno="EHOSTUNREACH"><reftrigger ref="always" /></function>
	  <function name="recvfrom" return="-1" errno="EINTR"><reftrigger ref="always" /></function>
	</scenario>`)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(cl.Replicas[0].C, silence)
	if err != nil {
		t.Fatal(err)
	}
	rt.Install()
	defer rt.Uninstall()
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	done, _ := cl.RunWorkload(3, 4*time.Second)
	if done != 3 {
		t.Fatalf("completed %d/3 after primary silencing", done)
	}
	views := 0
	for _, r := range cl.Replicas[1:] {
		if r.View() > 0 {
			views++
		}
	}
	if views < 2 {
		t.Fatalf("view change did not happen (views>0 on %d replicas)", views)
	}
}

func TestMsgEncodeDecode(t *testing.T) {
	m := Msg{Type: TypePrePrepare, View: 2, Seq: 7, Replica: 1, Client: "c", ReqID: 9, Op: "x", Digest: "d"}
	got, ok := DecodeMsg(m.Encode())
	if !ok || got != m {
		t.Fatalf("round trip: %+v", got)
	}
	if _, ok := DecodeMsg([]byte("junk")); ok {
		t.Fatal("garbage decoded")
	}
	if _, ok := DecodeMsg([]byte("{}")); ok {
		t.Fatal("empty type accepted")
	}
}

func TestDigestDeterministic(t *testing.T) {
	a := digest("c1", 1, "op")
	b := digest("c1", 1, "op")
	c := digest("c1", 2, "op")
	if a != b || a == c {
		t.Fatal("digest broken")
	}
}
