package pbft

import (
	"fmt"
	"time"

	"lfi/internal/libsim"
)

// Client parameters: retransmission keeps requests alive under loss; the
// paper's client similarly retransmits until f+1 matching replies arrive.
const (
	clientRecvTimeoutMs = 2
	retransmitEvery     = 20 * time.Millisecond
)

// Client is the PBFT client (the simple_client workload generator).
type Client struct {
	Name string
	N, F int

	C  *libsim.C
	Th *libsim.Thread
	fd int64

	reqID int64
}

// NewClient creates a client bound to the shared network.
func NewClient(name string, f int, net libsim.NetBackend) *Client {
	c := libsim.New(1 << 20)
	c.Node = "C"
	c.SetNet(net)
	return &Client{
		Name: name, N: 3*f + 1, F: f,
		C:  c,
		Th: c.NewThread("bft/simple-client", "main"),
	}
}

// Start opens and binds the client socket.
func (cl *Client) Start() error {
	t := cl.Th
	cl.fd = t.Socket()
	if cl.fd < 0 {
		return fmt.Errorf("pbft: client: socket: %v", t.Errno())
	}
	if t.Bind(cl.fd, cl.Name) < 0 {
		return fmt.Errorf("pbft: client: bind: %v", t.Errno())
	}
	return nil
}

// Invoke submits one operation and waits for f+1 matching replies,
// retransmitting the request to all replicas until the deadline.
// It returns the result and whether the operation completed.
func (cl *Client) Invoke(op string, deadline time.Duration) (string, bool) {
	t := cl.Th
	cl.reqID++
	req := Msg{Type: TypeRequest, Replica: -1, Client: cl.Name, ReqID: cl.reqID, Op: op}

	limit := time.Now().Add(deadline)
	votes := make(map[string]map[int]bool) // result -> replica set
	buf := make([]byte, 4096)

	sendAll := func() {
		for i := 0; i < cl.N; i++ {
			t.Sendto(cl.fd, req.Encode(), ReplicaAddr(i))
		}
	}
	sendAll()
	lastSend := time.Now()

	for time.Now().Before(limit) {
		var from string
		n := t.Recvfrom(cl.fd, buf, &from, clientRecvTimeoutMs)
		if n > 0 {
			if m, ok := DecodeMsg(buf[:n]); ok && m.Type == TypeReply && m.ReqID == cl.reqID {
				set := votes[m.Result]
				if set == nil {
					set = make(map[int]bool)
					votes[m.Result] = set
				}
				set[m.Replica] = true
				if len(set) >= cl.F+1 {
					return m.Result, true
				}
			}
		}
		if time.Since(lastSend) >= retransmitEvery {
			sendAll()
			lastSend = time.Now()
		}
	}
	return "", false
}

// Close releases the client socket.
func (cl *Client) Close() {
	if cl.fd >= 0 {
		cl.Th.Close(cl.fd)
	}
}
