package pbft

import (
	"fmt"

	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/distharness"
	"lfi/internal/libsim"
	"lfi/internal/netsim"
)

// This file adapts PBFT to the fault-space explorer through the
// protocol-agnostic distharness trace loop: pbft supplies only the
// protocol knowledge (which replica to stage, the recorded message
// trace, the liveness oracle) and distharness supplies the scripted
// recvfrom-interception ↔ trace-datagram loop with zero-depth-buffer
// loss semantics.
//
// The harness drives replica 3 of an f=1 configuration (a backup in
// view 0, not the primary of view 1) through one complete operation —
// REQUEST, PRE-PREPARE, the prepare and commit quorums, then a NEW-VIEW
// announcing view 1 — followed by a periodic checkpoint and the
// shutdown checkpoint.
//
// Both release-build Table 1 bugs are reachable with no hand-written
// scenario:
//
//   - the shutdown checkpoint's unchecked fopen (a single injected
//     fault crashes the following fwrite on a NULL stream);
//   - the view-change crash, which needs a *window* of receive faults:
//     losing only the REQUEST leaves the pre-prepare to supply the
//     content, and losing only the PRE-PREPARE is repaired from the
//     client request cache — but losing both (occurrence window 1-2)
//     lets the commit quorum record a contentless entry that the
//     NEW-VIEW then dereferences. That is exactly the burst shape the
//     explorer's window mutations discover.
const harnessReplicaID = 3

// protocol is PBFT's distharness plug: a stateless value; all per-run
// state lives in the Replica.
type protocol struct{}

// Protocol returns PBFT's scripted-trace protocol description.
func Protocol() distharness.Protocol { return protocol{} }

func (protocol) Name() string { return "pbft" }

func (protocol) Addr() string { return ReplicaAddr(harnessReplicaID) }

// Sinks lists the peer replicas and the client, so every outbound send
// has a live destination.
func (protocol) Sinks() []string {
	sinks := make([]string, 0, 4)
	for i := 0; i < harnessReplicaID; i++ { // replicas 0..2 of n=4
		sinks = append(sinks, ReplicaAddr(i))
	}
	return append(sinks, "client-0")
}

// NewReplica stages a release-build replica with coverage recording on.
func (protocol) NewReplica(net *netsim.Network) distharness.Replica {
	r := NewReplica(harnessReplicaID, 1, net, BuildRelease)
	r.EnableCoverage()
	return r
}

// Trace is the recorded message sequence: one operation reaching
// execution on a backup, then the move to view 1.
func (protocol) Trace() [][]byte {
	const client, op = "client-0", "op-1"
	d := digest(client, 1, op)
	msgs := []Msg{
		{Type: TypeRequest, Replica: -1, Client: client, ReqID: 1, Op: op},
		{Type: TypePrePrepare, View: 0, Seq: 1, Replica: 0, Client: client, ReqID: 1, Op: op, Digest: d},
		{Type: TypePrepare, View: 0, Seq: 1, Replica: 1, Digest: d},
		{Type: TypePrepare, View: 0, Seq: 1, Replica: 2, Digest: d},
		{Type: TypeCommit, View: 0, Seq: 1, Replica: 0, Digest: d},
		{Type: TypeCommit, View: 0, Seq: 1, Replica: 1, Digest: d},
		{Type: TypeCommit, View: 0, Seq: 1, Replica: 2, Digest: d},
		{Type: TypeNewView, View: 1, Replica: 1},
	}
	trace := make([][]byte, len(msgs))
	for i, m := range msgs {
		trace[i] = m.Encode()
	}
	return trace
}

// Check is the liveness oracle: a run that survives but fails to
// execute the operation is a workload-detected failure.
func (protocol) Check(r distharness.Replica) error {
	if got := r.(*Replica).Executed(); got != 1 {
		return fmt.Errorf("pbft harness: executed %d of 1 operations", got)
	}
	return nil
}

// Image, Coverage and Finish adapt *Replica to distharness.Replica
// (Open and PollOnce it already has).

// Image returns the replica's simulated process.
func (r *Replica) Image() *libsim.C { return r.C }

// Coverage returns the replica's block tracker.
func (r *Replica) Coverage() *coverage.Tracker { return r.Cov }

// Finish writes the periodic checkpoint and then the shutdown
// checkpoint (the unchecked-fopen Table 1 bug), directly so crashes
// propagate to the controller's monitor.
func (r *Replica) Finish() {
	r.Checkpoint()
	r.ShutdownCheckpoint()
}

// Target adapts the scripted harness to the LFI controller.
func Target() controller.Target { return distharness.Target(Protocol()) }

// TargetWithCoverage is Target plus per-run coverage merged into acc.
func TargetWithCoverage(acc *coverage.Tracker) controller.Target {
	return distharness.TargetWithCoverage(Protocol(), acc)
}
