package pbft

import (
	"fmt"

	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/libsim"
	"lfi/internal/netsim"
)

// This file adapts PBFT to the fault-space explorer: a scripted
// single-replica harness that replays a recorded protocol trace
// synchronously, so exploration over the replica binary is as
// deterministic and as fast as the single-process application targets.
//
// The harness drives replica 3 of an f=1 configuration (a backup in
// view 0, not the primary of view 1) through one complete operation —
// REQUEST, PRE-PREPARE, the prepare and commit quorums, then a NEW-VIEW
// announcing view 1 — followed by a periodic checkpoint and the
// shutdown checkpoint. Each scripted datagram is staged on the wire and
// consumed by exactly one interposed recvfrom, and a failed receive
// drops the datagram (netsim.Drop models the zero-depth socket buffer),
// so the i-th receive interception maps 1:1 to the i-th trace message
// and injected receive faults have real loss semantics.
//
// Both release-build Table 1 bugs are reachable with no hand-written
// scenario:
//
//   - the shutdown checkpoint's unchecked fopen (a single injected
//     fault crashes the following fwrite on a NULL stream);
//   - the view-change crash, which needs a *window* of receive faults:
//     losing only the REQUEST leaves the pre-prepare to supply the
//     content, and losing only the PRE-PREPARE is repaired from the
//     client request cache — but losing both (occurrence window 1-2)
//     lets the commit quorum record a contentless entry that the
//     NEW-VIEW then dereferences. That is exactly the burst shape the
//     explorer's occurrence-window mutation discovers.
const harnessReplicaID = 3

// Harness is one scripted replay of the protocol trace.
type Harness struct {
	Net *netsim.Network
	R   *Replica

	wire libsim.NetEndpoint // staging endpoint the trace is sent from
}

// NewHarness stages a release-build replica plus sink endpoints for its
// peers and the client, so every outbound send has a live destination.
func NewHarness() *Harness {
	net := netsim.New()
	h := &Harness{Net: net, R: NewReplica(harnessReplicaID, 1, net, BuildRelease)}
	h.R.EnableCoverage()
	for i := 0; i < h.R.N; i++ {
		if i != harnessReplicaID {
			sink := net.NewEndpoint()
			sink.Bind(ReplicaAddr(i))
		}
	}
	sink := net.NewEndpoint()
	sink.Bind("client-0")
	h.wire = net.NewEndpoint()
	return h
}

// trace is the recorded message sequence: one operation reaching
// execution on a backup, then the move to view 1.
func (h *Harness) trace() []Msg {
	const client, op = "client-0", "op-1"
	d := digest(client, 1, op)
	return []Msg{
		{Type: TypeRequest, Replica: -1, Client: client, ReqID: 1, Op: op},
		{Type: TypePrePrepare, View: 0, Seq: 1, Replica: 0, Client: client, ReqID: 1, Op: op, Digest: d},
		{Type: TypePrepare, View: 0, Seq: 1, Replica: 1, Digest: d},
		{Type: TypePrepare, View: 0, Seq: 1, Replica: 2, Digest: d},
		{Type: TypeCommit, View: 0, Seq: 1, Replica: 0, Digest: d},
		{Type: TypeCommit, View: 0, Seq: 1, Replica: 1, Digest: d},
		{Type: TypeCommit, View: 0, Seq: 1, Replica: 2, Digest: d},
		{Type: TypeNewView, View: 1, Replica: 1},
	}
}

// Run replays the trace. Crashes (the shutdown NULL-stream fwrite, the
// view-change dereference) propagate as panics for the controller's
// monitor; a run that survives but fails to execute the operation is a
// workload-detected failure.
func (h *Harness) Run() error {
	r := h.R
	if err := r.Open(); err != nil {
		return err
	}
	buf := make([]byte, 4096)
	for _, m := range h.trace() {
		if e := h.wire.SendTo(ReplicaAddr(harnessReplicaID), m.Encode()); e != 0 {
			return fmt.Errorf("pbft harness: stage datagram: errno %d", e)
		}
		if !r.PollOnce(buf) {
			h.Net.Drop(ReplicaAddr(harnessReplicaID)) // zero-depth buffer: the datagram is lost
		}
	}
	r.Checkpoint()
	r.ShutdownCheckpoint()
	if got := r.Executed(); got != 1 {
		return fmt.Errorf("pbft harness: executed %d of 1 operations", got)
	}
	return nil
}

// Target adapts the scripted harness to the LFI controller. Each Start
// builds a fresh harness, so campaign workers run independently.
func Target() controller.Target {
	return controller.Target{
		Name: "pbft",
		Start: func() (*libsim.C, func() error) {
			h := NewHarness()
			return h.R.C, h.Run
		},
	}
}

// TargetWithCoverage is Target plus per-run coverage merged into acc —
// the TargetWithCoverage shape the explorer consumes.
func TargetWithCoverage(acc *coverage.Tracker) controller.Target {
	return controller.Target{
		Name: "pbft",
		Start: func() (*libsim.C, func() error) {
			h := NewHarness()
			return h.R.C, func() error {
				defer func() { acc.Merge(h.R.Cov) }()
				return h.Run()
			}
		},
	}
}
