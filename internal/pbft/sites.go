package pbft

import (
	"sync"

	"lfi/internal/asm"
	"lfi/internal/isa"
)

// ModuleServer is the server binary's module name; the paper's generated
// scenario (§7.1) pins its call-stack trigger to this module.
const ModuleServer = "bft/simple-server"

// Sites is the ground-truth call-site model of the replica binary.
func Sites() []asm.FuncSpec {
	return []asm.FuncSpec{
		{Name: "svc_recv", Sites: []asm.SiteSpec{
			// Release build: the recvfrom return feeds directly into
			// message handling without an error check (Table 1).
			{Label: "sv_recvfrom", Callee: "recvfrom", Style: asm.CheckNone},
		}},
		{Name: "svc_send", Sites: []asm.SiteSpec{
			// Only the debug build halts on send failures; the binary
			// shipped (release) does not check.
			{Label: "sv_sendto", Callee: "sendto", Style: asm.CheckNone},
		}},
		{Name: "checkpoint", Sites: []asm.SiteSpec{
			{Label: "cp_fopen_ok", Callee: "fopen", Style: asm.CheckEqZero},
			{Label: "cp_fwrite_ok", Callee: "fwrite", Style: asm.CheckEq, Codes: []int64{0}},
		}},
		{Name: "shutdown", Sites: []asm.SiteSpec{
			// BUG (Table 1): the final checkpoint's fopen is unchecked;
			// the following fwrite crashes on the NULL stream.
			{Label: "sd_fopen", Callee: "fopen", Style: asm.CheckNone},
			{Label: "sd_fwrite", Callee: "fwrite", Style: asm.CheckIneq},
		}},
	}
}

var (
	binOnce sync.Once
	bin     *isa.Binary
	offs    map[string]uint64
)

// Binary returns the compiled replica program image and site offsets.
func Binary() (*isa.Binary, map[string]uint64) {
	binOnce.Do(func() {
		var err error
		bin, offs, err = asm.Program(ModuleServer, Sites())
		if err != nil {
			panic("pbft: " + err.Error())
		}
	})
	return bin, offs
}
