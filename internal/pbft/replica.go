package pbft

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lfi/internal/coverage"
	"lfi/internal/libsim"
)

// Tunables, scaled down from the real system so experiments run in
// milliseconds instead of minutes.
const (
	recvTimeoutMs     = 2
	rebroadcastEvery  = 4 * time.Millisecond
	viewChangeTimeout = 150 * time.Millisecond
	checkpointEvery   = 8
)

// Build selects the replica build variant, mirroring §7.1's observation
// that one PBFT bug manifests only in the release build.
type Build int

const (
	// BuildDebug checks every send and halts with an error code as
	// soon as one fails (so the view-change bug never manifests).
	BuildDebug Build = iota
	// BuildRelease retries failed sends a bounded number of times and
	// otherwise ignores the failure; under sustained loss a replica
	// can record a commit quorum without the request content and
	// later crash in the view change — the Table 1 bug.
	BuildRelease
	// BuildPatched is the post-fix build used for performance
	// studies: like release, but a commit quorum is only recorded
	// once the request content is known.
	BuildPatched
)

// sendRetries bounds the release/patched builds' immediate resend of a
// failed sendto (PBFT's robust send layer).
const sendRetries = 8

// entry is the per-sequence-number protocol state.
type entry struct {
	digest   string
	client   string
	reqID    int64
	op       string
	hasReq   bool // request content known (pre-prepare received)
	prepares map[int]bool
	commits  map[int]bool
	prepared bool
	// committed means a 2f+1 commit quorum was observed; in the
	// release build this can happen without hasReq (the seeded bug).
	committed bool
	executed  bool
}

// Replica is one PBFT server.
type Replica struct {
	ID    int
	N, F  int
	Build Build

	C  *libsim.C
	Th *libsim.Thread
	fd int64

	// Cov tracks block coverage for the fault-space explorer; blocks
	// follow the rec.<siteLabel> convention of the application targets.
	// Hits are recorded only when covOn is set (the scripted harness):
	// the live cluster loop must stay byte-identical to the seed hot
	// path, because the view-change reproduction and the Figure 3 /
	// DoS timing studies are sensitive to per-message overhead.
	Cov   *coverage.Tracker
	covOn bool

	mu         sync.Mutex
	view       int
	seqCounter int
	entries    map[int]*entry
	// pendingReqs caches request content received directly from
	// clients, keyed by digest, so protocol messages that carry only
	// a digest can be matched to their content (PBFT's request
	// dissemination).
	pendingReqs map[string]Msg
	execUpto    int
	state       []string
	lastReply   map[string]Msg // client -> cached reply
	vcVotes     map[int]map[int]bool
	inVC        bool
	vcView      int       // view change target
	vcStreak    int       // consecutive view changes without progress
	lastVCSent  time.Time // vote retransmission pacing
	pendingAt   time.Time // oldest unexecuted request observed at
	halted      bool
	executedN   int64

	// crash is stored atomically: the panic that carries it may be
	// raised while r.mu is held, so the recover path must not lock.
	crash atomic.Pointer[libsim.Crash]

	stop chan struct{}
	done chan struct{}
}

// NewReplica creates replica i of n=3f+1, bound to the shared network.
func NewReplica(id, f int, net libsim.NetBackend, build Build) *Replica {
	c := libsim.New(1 << 22)
	c.Node = fmt.Sprintf("R%d", id)
	c.SetNet(net)
	c.MustMkdirAll("/pbft")
	r := &Replica{
		ID: id, N: 3*f + 1, F: f, Build: build,
		C:           c,
		Th:          c.NewThread("bft/simple-server", "main"),
		Cov:         coverage.New(),
		entries:     make(map[int]*entry),
		pendingReqs: make(map[string]Msg),
		lastReply:   make(map[string]Msg),
		vcVotes:     make(map[int]map[int]bool),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	r.registerCoverage()
	return r
}

func (r *Replica) registerCoverage() {
	reg := func(id string, loc int, rec bool) { r.Cov.Register(id, loc, rec) }
	reg("main.request", 30, false)
	reg("main.preprepare", 25, false)
	reg("main.prepare", 15, false)
	reg("main.commit", 15, false)
	reg("main.exec", 20, false)
	reg("main.viewadopt", 25, false)
	reg("main.checkpoint", 12, false)
	reg("main.shutdown", 8, false)
	// Recovery arms: the receive-failure pacing, the robust-send retry
	// loop, and the tolerated periodic-checkpoint open failure.
	reg("rec.sv_recvfrom", 5, true)
	reg("rec.sv_sendto", 6, true)
	reg("rec.cp_fopen_ok", 3, true)
}

// hit records a coverage block when tracking is enabled. The scripted
// harness enables it; live cluster replicas leave it off so the timing
// experiments see the seed-identical hot path.
func (r *Replica) hit(id string) {
	if r.covOn {
		r.Cov.Hit(id)
	}
}

// EnableCoverage turns per-block coverage recording on (the scripted
// harness does this; see the Cov field comment for why it is opt-in).
func (r *Replica) EnableCoverage() { r.covOn = true }

// primary returns the primary replica id of a view.
func primary(view, n int) int { return view % n }

// isPrimary reports whether this replica leads its current view.
func (r *Replica) isPrimary() bool { return primary(r.view, r.N) == r.ID }

// Crash returns the crash that terminated the replica, if any.
func (r *Replica) Crash() *libsim.Crash { return r.crash.Load() }

// Halted reports whether the debug build stopped after a send failure.
func (r *Replica) Halted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.halted
}

// Executed returns how many operations this replica has executed.
func (r *Replica) Executed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executedN
}

// State returns a copy of the executed operation log (for safety checks).
func (r *Replica) State() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.state...)
}

// View returns the replica's current view.
func (r *Replica) View() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.view
}

// Open creates and binds the replica socket without starting the
// receive loop — the scripted harness drives receives itself.
func (r *Replica) Open() error {
	t := r.Th
	r.fd = t.Socket()
	if r.fd < 0 {
		return fmt.Errorf("pbft: replica %d: socket: %v", r.ID, t.Errno())
	}
	if t.Bind(r.fd, ReplicaAddr(r.ID)) < 0 {
		return fmt.Errorf("pbft: replica %d: bind: %v", r.ID, t.Errno())
	}
	return nil
}

// Start opens the socket and runs the replica loop in a goroutine.
func (r *Replica) Start() error {
	if err := r.Open(); err != nil {
		return err
	}
	go r.run()
	return nil
}

// PollOnce performs exactly one non-blocking receive and handles the
// message if one arrived. It reports whether a datagram was consumed;
// on a failed receive — injected or real — the caller owns the fate of
// whatever was on the wire (the scripted harness drops it, modelling a
// zero-depth socket buffer). Crashes raised while handling propagate to
// the caller, which is what the controller's monitor expects.
func (r *Replica) PollOnce(buf []byte) bool {
	var from string
	pop := r.at("svc_recv", "sv_recvfrom")
	n := r.Th.Recvfrom(r.fd, buf, &from, 0)
	pop()
	if n <= 0 {
		r.hit("rec.sv_recvfrom")
		return false
	}
	if m, ok := DecodeMsg(buf[:n]); ok {
		r.handle(m)
	}
	return true
}

// Checkpoint writes one periodic checkpoint on demand (the checked
// fopen path the scripted harness exercises explicitly).
func (r *Replica) Checkpoint() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.writeCheckpointLocked()
}

// Stop terminates the loop and writes the shutdown checkpoint (which
// carries the unchecked-fopen bug).
func (r *Replica) Stop() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
}

// run is the replica main loop: receive, process, retransmit, suspect.
func (r *Replica) run() {
	defer close(r.done)
	defer func() {
		if p := recover(); p != nil {
			if cr, ok := p.(*libsim.Crash); ok {
				r.crash.Store(cr)
				return
			}
			panic(p)
		}
	}()
	lastTick := time.Now()
	buf := make([]byte, 4096)
	recvFails := 0
	for {
		select {
		case <-r.stop:
			r.ShutdownCheckpoint()
			return
		default:
		}
		if r.Halted() {
			return
		}
		var from string
		pop := r.at("svc_recv", "sv_recvfrom")
		n := r.Th.Recvfrom(r.fd, buf, &from, recvTimeoutMs)
		pop()
		if n > 0 {
			recvFails = 0
			if m, ok := DecodeMsg(buf[:n]); ok {
				r.handle(m)
			}
		} else if n < 0 {
			// Defensive pacing: an instantly-failing receive (EINTR
			// storm) must not turn the loop into a busy spin that
			// starves the healthy replicas of CPU.
			r.hit("rec.sv_recvfrom")
			recvFails++
			if recvFails >= 3 {
				time.Sleep(time.Millisecond)
			}
		}
		if time.Since(lastTick) >= rebroadcastEvery {
			lastTick = time.Now()
			r.tick()
		}
	}
}

// send transmits one message to a peer or client address. The debug
// build halts with an error code on the first send failure; the
// release and patched builds retry a bounded number of times and then
// give the message up — in the release build silently, which is the
// root of the view-change bug.
func (r *Replica) send(dst string, m Msg) {
	payload := m.Encode()
	attempts := 1
	if r.Build != BuildDebug {
		attempts = 1 + sendRetries
	}
	for i := 0; i < attempts; i++ {
		pop := r.at("svc_send", "sv_sendto")
		n := r.Th.Sendto(r.fd, payload, dst)
		pop()
		if n >= 0 {
			return
		}
		if i == 0 && attempts > 1 {
			r.hit("rec.sv_sendto") // robust-send retry path entered
		}
	}
	if r.Build == BuildDebug {
		r.mu.Lock()
		r.halted = true
		r.mu.Unlock()
	}
}

// broadcast sends to every other replica.
func (r *Replica) broadcast(m Msg) {
	for i := 0; i < r.N; i++ {
		if i != r.ID {
			r.send(ReplicaAddr(i), m)
		}
	}
}

func (r *Replica) at(fn, label string) func() {
	_, offsets := Binary()
	return r.Th.Enter(ModuleServer, fn, offsets[label])
}

// getEntry returns (creating if needed) the protocol entry for seq.
func (r *Replica) getEntry(seq int) *entry {
	e, ok := r.entries[seq]
	if !ok {
		e = &entry{prepares: make(map[int]bool), commits: make(map[int]bool)}
		r.entries[seq] = e
	}
	return e
}

// fillContentLocked completes an entry whose digest is known but whose
// request content has not arrived, using the client-supplied request
// cache. The release build cannot repair slots that were already
// recorded as committed: its commit-log insert stored a dangling
// request pointer, and that is the seeded view-change bug.
func (r *Replica) fillContentLocked(e *entry) {
	if e.hasReq || e.digest == "" {
		return
	}
	if e.committed && r.Build == BuildRelease {
		return // corrupt slot; late content cannot fix it
	}
	req, ok := r.pendingReqs[e.digest]
	if !ok {
		return
	}
	e.client, e.reqID, e.op, e.hasReq = req.Client, req.ReqID, req.Op, true
}

// handle dispatches one received message. It takes the replica lock for
// state mutation and releases it around network sends.
func (r *Replica) handle(m Msg) {
	switch m.Type {
	case TypeRequest:
		r.onRequest(m)
	case TypePrePrepare:
		r.onPrePrepare(m)
	case TypePrepare:
		r.onPrepare(m)
	case TypeCommit:
		r.onCommit(m)
	case TypeViewChange:
		r.onViewChange(m)
	case TypeNewView:
		r.onNewView(m)
	}
}

func (r *Replica) onRequest(m Msg) {
	r.hit("main.request")
	r.mu.Lock()
	// Duplicate of an executed request: resend the cached reply.
	if rep, ok := r.lastReply[m.Client]; ok && rep.ReqID == m.ReqID {
		r.mu.Unlock()
		r.send(m.Client, rep)
		return
	}
	d := digest(m.Client, m.ReqID, m.Op)
	// Cache the content so digest-only protocol messages can be
	// matched to it; repair entries already waiting for this digest.
	r.pendingReqs[d] = m
	for _, e := range r.entries {
		r.fillContentLocked(e)
	}
	if !r.isPrimary() {
		// Backup: remember that work is pending so the view-change
		// timer runs; the client also retransmits to the primary.
		if r.pendingAt.IsZero() {
			r.pendingAt = time.Now()
		}
		r.mu.Unlock()
		return
	}
	// Primary: assign the next sequence number, unless this request
	// is already in flight.
	for _, e := range r.entries {
		if e.digest == d && !e.executed {
			r.mu.Unlock()
			return // already proposed
		}
	}
	r.seqCounter++
	seq := r.seqCounter
	e := r.getEntry(seq)
	e.digest, e.client, e.reqID, e.op, e.hasReq = d, m.Client, m.ReqID, m.Op, true
	if r.pendingAt.IsZero() {
		r.pendingAt = time.Now()
	}
	pp := Msg{Type: TypePrePrepare, View: r.view, Seq: seq, Replica: r.ID,
		Client: m.Client, ReqID: m.ReqID, Op: m.Op, Digest: d}
	e.prepares[r.ID] = true
	r.mu.Unlock()
	r.broadcast(pp)
}

func (r *Replica) onPrePrepare(m Msg) {
	r.hit("main.preprepare")
	r.mu.Lock()
	// A pre-prepare from the primary of a HIGHER view implies that a
	// quorum already moved there; adopt it (new-view semantics
	// folded in, which keeps views from skewing apart under loss).
	if m.View > r.view && m.Replica == primary(m.View, r.N) {
		r.adoptViewLocked(m.View)
	}
	if m.View != r.view || m.Replica != primary(r.view, r.N) {
		r.mu.Unlock()
		return
	}
	e := r.getEntry(m.Seq)
	if e.hasReq && e.digest != m.Digest {
		r.mu.Unlock()
		return // conflicting pre-prepare; ignore
	}
	e.digest, e.client, e.reqID, e.op, e.hasReq = m.Digest, m.Client, m.ReqID, m.Op, true
	e.prepares[m.Replica] = true
	e.prepares[r.ID] = true
	if r.pendingAt.IsZero() {
		r.pendingAt = time.Now()
	}
	p := Msg{Type: TypePrepare, View: r.view, Seq: m.Seq, Replica: r.ID, Digest: m.Digest}
	r.mu.Unlock()
	r.broadcast(p)
	r.checkQuorums(m.Seq)
}

func (r *Replica) onPrepare(m Msg) {
	r.hit("main.prepare")
	r.mu.Lock()
	// Prepares are matched by (seq, digest) rather than exact view:
	// under benign loss a peer may lag one view behind, and its
	// prepare for the same digest is still evidence of agreement.
	e := r.getEntry(m.Seq)
	if e.hasReq && m.Digest != "" && e.digest != m.Digest {
		r.mu.Unlock()
		return
	}
	if e.digest == "" {
		e.digest = m.Digest
	}
	r.fillContentLocked(e)
	e.prepares[m.Replica] = true
	r.mu.Unlock()
	r.checkQuorums(m.Seq)
}

func (r *Replica) onCommit(m Msg) {
	r.hit("main.commit")
	r.mu.Lock()
	e := r.getEntry(m.Seq)
	if e.digest == "" {
		e.digest = m.Digest
	}
	r.fillContentLocked(e)
	e.commits[m.Replica] = true
	r.mu.Unlock()
	r.checkQuorums(m.Seq)
}

// checkQuorums advances the entry through prepared/committed/executed.
func (r *Replica) checkQuorums(seq int) {
	r.mu.Lock()
	e := r.getEntry(seq)
	// prepared: pre-prepare + 2f matching prepares.
	if !e.prepared && e.hasReq && len(e.prepares) >= 2*r.F {
		e.prepared = true
		e.commits[r.ID] = true
		c := Msg{Type: TypeCommit, View: r.view, Seq: seq, Replica: r.ID, Digest: e.digest}
		r.mu.Unlock()
		r.broadcast(c)
		r.mu.Lock()
	}
	// committed: 2f+1 commits. The release build records this even
	// without the request content (messages were lost and the send
	// failures went unchecked) — the latent view-change bug. The
	// debug and patched builds require the content.
	if !e.committed && len(e.commits) >= 2*r.F+1 {
		if e.hasReq || r.Build == BuildRelease {
			e.committed = true
		}
	}
	r.executeReady()
	r.mu.Unlock()
}

// executeReady executes committed entries in sequence order (caller
// holds the lock).
func (r *Replica) executeReady() {
	for {
		e, ok := r.entries[r.execUpto+1]
		if !ok || !e.committed || !e.hasReq || e.executed {
			return
		}
		r.execUpto++
		e.executed = true
		r.executedN++
		r.hit("main.exec")
		r.vcStreak = 0 // progress: reset the view-change backoff
		r.state = append(r.state, e.op)
		rep := Msg{Type: TypeReply, View: r.view, Seq: r.execUpto, Replica: r.ID,
			Client: e.client, ReqID: e.reqID, Result: "ok:" + e.op}
		r.lastReply[e.client] = rep
		r.pendingAt = time.Time{} // progress made
		if r.executedN%checkpointEvery == 0 {
			r.writeCheckpointLocked()
		}
		client := e.client
		r.mu.Unlock()
		r.send(client, rep)
		r.mu.Lock()
	}
}

// tick retransmits protocol messages for stalled entries and starts a
// view change when no progress happens for too long.
func (r *Replica) tick() {
	r.mu.Lock()
	var resend []Msg
	for seq, e := range r.entries {
		if e.executed {
			continue
		}
		switch {
		case e.prepared:
			resend = append(resend, Msg{Type: TypeCommit, View: r.view, Seq: seq, Replica: r.ID, Digest: e.digest})
		case e.hasReq && r.isPrimary():
			resend = append(resend, Msg{Type: TypePrePrepare, View: r.view, Seq: seq, Replica: r.ID,
				Client: e.client, ReqID: e.reqID, Op: e.op, Digest: e.digest})
		case e.hasReq:
			resend = append(resend, Msg{Type: TypePrepare, View: r.view, Seq: seq, Replica: r.ID, Digest: e.digest})
		}
	}
	// Exponential backoff on consecutive view changes (as in PBFT):
	// without it, high message loss makes operation latency exceed
	// the base timeout and reconfiguration preempts every operation.
	streak := r.vcStreak
	if streak > 4 {
		streak = 4
	}
	vcTimeout := viewChangeTimeout << streak
	stalled := !r.pendingAt.IsZero() && time.Since(r.pendingAt) > vcTimeout
	var vc Msg
	sendVC := false
	if stalled {
		if !r.inVC {
			r.inVC = true
			r.vcView = r.view + 1
			votes := r.vcVotes[r.vcView]
			if votes == nil {
				votes = make(map[int]bool)
				r.vcVotes[r.vcView] = votes
			}
			votes[r.ID] = true
		}
		// Retransmit the vote while stalled: under message loss a
		// single VIEW-CHANGE broadcast may never reach a quorum.
		if time.Since(r.lastVCSent) > viewChangeTimeout/2 {
			r.lastVCSent = time.Now()
			vc = Msg{Type: TypeViewChange, View: r.vcView, Replica: r.ID}
			sendVC = true
		}
	}
	r.mu.Unlock()
	for _, m := range resend {
		r.broadcast(m)
	}
	if sendVC {
		r.broadcast(vc)
	}
}

func (r *Replica) onViewChange(m Msg) {
	r.mu.Lock()
	if m.View <= r.view {
		r.mu.Unlock()
		return
	}
	votes := r.vcVotes[m.View]
	if votes == nil {
		votes = make(map[int]bool)
		r.vcVotes[m.View] = votes
	}
	votes[m.Replica] = true
	// Echo our own vote once someone else suspects (f+1 rule folded in).
	if !votes[r.ID] && len(votes) >= r.F+1 {
		votes[r.ID] = true
		vc := Msg{Type: TypeViewChange, View: m.View, Replica: r.ID}
		r.mu.Unlock()
		r.broadcast(vc)
		r.mu.Lock()
	}
	if len(votes) >= 2*r.F+1 && m.View > r.view {
		r.enterViewLocked(m.View)
	}
	r.mu.Unlock()
}

// enterViewLocked moves to a new view; the new primary announces it and
// re-proposes unexecuted-but-known requests. This is where the release
// build dereferences committed-but-contentless messages (Table 1).
// adoptViewLocked moves to view v by any path (vote quorum, NEW-VIEW,
// or a higher-view pre-prepare). Every view entry summarizes the
// replica's committed prefix — the material of its view-change
// certificate. Accessing a committed message whose content never
// arrived is the seeded segfault; it can only happen in the release
// build (see fillContentLocked).
func (r *Replica) adoptViewLocked(v int) {
	r.hit("main.viewadopt")
	r.view = v
	r.inVC = false
	r.vcStreak++
	r.pendingAt = time.Time{}
	// Adopt the highest known sequence number so new proposals never
	// collide with earlier views' assignments.
	if m := r.seqCounterMaxLocked(); m > r.seqCounter {
		r.seqCounter = m
	}
	for seq := 1; seq <= r.seqCounterMaxLocked(); seq++ {
		e, ok := r.entries[seq]
		if !ok || !e.committed {
			continue
		}
		if !e.hasReq {
			r.Th.RaiseCrash(libsim.Segfault,
				"view change: access to committed message seq=%d with no content", seq)
		}
	}
}

func (r *Replica) enterViewLocked(v int) {
	r.adoptViewLocked(v)
	if primary(v, r.N) != r.ID {
		return
	}
	nv := Msg{Type: TypeNewView, View: v, Replica: r.ID}
	r.mu.Unlock()
	r.broadcast(nv)
	r.mu.Lock()
	// Re-propose pending requests under the new view.
	for seq, e := range r.entries {
		if e.hasReq && !e.executed {
			pp := Msg{Type: TypePrePrepare, View: v, Seq: seq, Replica: r.ID,
				Client: e.client, ReqID: e.reqID, Op: e.op, Digest: e.digest}
			r.mu.Unlock()
			r.broadcast(pp)
			r.mu.Lock()
		}
	}
}

func (r *Replica) seqCounterMaxLocked() int {
	maxSeq := 0
	for seq := range r.entries {
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	return maxSeq
}

func (r *Replica) onNewView(m Msg) {
	r.mu.Lock()
	if m.View > r.view && m.Replica == primary(m.View, r.N) {
		r.adoptViewLocked(m.View)
	}
	r.mu.Unlock()
}

// writeCheckpointLocked persists periodic checkpoints (checked path).
func (r *Replica) writeCheckpointLocked() {
	t := r.Th
	r.hit("main.checkpoint")
	pop := r.at("checkpoint", "cp_fopen_ok")
	fp := t.Fopen(fmt.Sprintf("/pbft/ckpt-%d", r.execUpto), "w")
	pop()
	if fp == 0 {
		r.hit("rec.cp_fopen_ok")
		return // periodic checkpoint failure is tolerated
	}
	pop = r.at("checkpoint", "cp_fwrite_ok")
	t.Fwrite([]byte(fmt.Sprintf("ckpt %d ops=%d", r.execUpto, r.executedN)), fp)
	pop()
	t.Fclose(fp)
}

// ShutdownCheckpoint is the replica's exit path: it writes a final
// checkpoint WITHOUT checking that the file opened — the Table 1 PBFT
// bug (fwrite through a NULL FILE*). The receive loop calls it on
// stop; the scripted harness calls it directly so the crash propagates
// to the controller's monitor.
func (r *Replica) ShutdownCheckpoint() {
	t := r.Th
	r.hit("main.shutdown")
	pop := r.at("shutdown", "sd_fopen")
	fp := t.Fopen("/pbft/checkpoint-final", "w")
	pop()
	// BUG: fp not checked.
	pop = r.at("shutdown", "sd_fwrite")
	t.Fwrite([]byte(fmt.Sprintf("final ckpt ops=%d", r.Executed())), fp)
	pop()
	t.Fclose(fp)
}
