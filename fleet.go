package lfi

// Fleet service mode: the session side of the fleetd registry.
//
// WithFleet turns worker wiring inside out. Instead of the user handing
// the session a host:port list (WithExecutors + DialExecutor), workers
// announce *themselves* to a registry (`lfi serve -register`), and the
// session discovers the live set at construction, follows it for the
// whole campaign — workers that join mid-run are dialed and added,
// workers the registry evicts on missed heartbeats are retired so no
// new batch lands on them — and publishes exploration progress back so
// `lfi fleet status` shows the campaign next to the worker throughput.

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"lfi/internal/exec"
	"lfi/internal/explore"
	"lfi/internal/fleetd"
)

// WithFleet connects the session to a fleetd registry (host:port or
// URL): execution backends are discovered from the registry's live
// worker set instead of being listed by hand, kept in sync with it for
// the session's lifetime, and campaign progress is published back.
// Combines with WithExecutors: explicit backends stay, and mixing in
// NewLocalExecutor (what `lfi explore -fleet` does unless -no-local)
// also covers mixed-build re-validation when every registered worker
// runs a different build. With no explicit executors the fleet starts
// empty and consists solely of discovered workers. Discovery failure
// at construction is an error; a registry that dies mid-run only stops
// the sync, never the campaign.
func WithFleet(registry string) SessionOption {
	return func(s *Session) error {
		if registry == "" {
			return fmt.Errorf("lfi: WithFleet: empty registry address")
		}
		s.fleetReg = registry
		return nil
	}
}

// fleetWatch keeps the session's executor fleet synchronized with the
// registry's live worker set. The dialed map is owned by the sync
// goroutine after construction (the initial sync runs in NewSession,
// before the goroutine starts).
type fleetWatch struct {
	registry string
	fleet    *exec.Fleet
	log      func(format string, args ...any)
	dialed   map[string]bool // worker addr -> currently dialed
	stop     chan struct{}
	done     chan struct{}
}

// execName is the fleet backend name a worker address dials to — must
// match exec.Remote.Info().Name so Retire hits the right backend.
func execName(addr string) string { return "remote(" + addr + ")" }

// sync reconciles the fleet against one registry snapshot: dial and add
// workers we do not have, retire workers the registry no longer lists.
func (w *fleetWatch) sync(workers []fleetd.Worker) (added, retired int) {
	live := make(map[string]bool, len(workers))
	for _, rec := range workers {
		live[rec.Addr] = true
		if w.dialed[rec.Addr] {
			continue
		}
		r, err := exec.Dial(rec.Addr)
		if err != nil {
			// A mismatched build needs a rebuild, not a retry; anything
			// else (worker died between heartbeat and dial) will be
			// evicted by the registry shortly. Either way: skip, log.
			w.log("lfi: fleet: skipping worker %s: %v", rec.Addr, err)
			continue
		}
		w.fleet.Add(r)
		w.dialed[rec.Addr] = true
		added++
	}
	for addr := range w.dialed {
		if !live[addr] {
			w.fleet.Retire(execName(addr))
			delete(w.dialed, addr)
			retired++
		}
	}
	return added, retired
}

// run polls the registry at the heartbeat cadence until stopped.
func (w *fleetWatch) run(interval time.Duration) {
	defer close(w.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
		}
		workers, err := fleetd.Workers(w.registry)
		if err != nil {
			continue // registry unreachable: keep the current fleet
		}
		added, retired := w.sync(workers)
		if added+retired > 0 {
			w.log("lfi: fleet: %d worker(s) joined, %d evicted (fleet now %d dialed)",
				added, retired, len(w.dialed))
		}
	}
}

// close stops the sync goroutine and waits for it.
func (w *fleetWatch) close() {
	close(w.stop)
	<-w.done
}

// fleetPublisher forwards explorer status snapshots to the registry's
// campaign endpoint, rate-limited to one POST per second — a dropped
// intermediate snapshot is superseded by the next one anyway. Publishes
// are fire-and-forget: status is observability, never control flow.
type fleetPublisher struct {
	registry string
	session  string

	mu      sync.Mutex
	last    time.Time
	systems map[string]fleetd.SystemStatus
}

func newFleetPublisher(registry string) *fleetPublisher {
	host, _ := os.Hostname()
	return &fleetPublisher{
		registry: registry,
		session:  fmt.Sprintf("%s/%d", host, os.Getpid()),
		systems:  make(map[string]fleetd.SystemStatus),
	}
}

// publish is the explore.Config.Status hook.
func (p *fleetPublisher) publish(u explore.StatusUpdate) {
	p.mu.Lock()
	p.systems[u.System] = fleetd.SystemStatus{
		Executed:       u.Executed,
		Replayed:       u.Replayed,
		Bugs:           u.Bugs,
		Covered:        u.Covered,
		RecoveryBlocks: u.RecoveryBlocks,
		GainPerRun:     u.Cost.GainPerRun,
		Speed:          u.Cost.Speed,
	}
	if time.Since(p.last) < time.Second {
		p.mu.Unlock()
		return
	}
	p.last = time.Now()
	c := fleetd.CampaignStatus{Session: p.session, Systems: make(map[string]fleetd.SystemStatus, len(p.systems))}
	for k, v := range p.systems {
		c.Systems[k] = v
	}
	p.mu.Unlock()
	go fleetd.PublishCampaign(p.registry, c)
}

// initFleet runs WithFleet's discovery during NewSession: fetch the
// live worker set, dial every worker, and start the sync goroutine.
// Called after the executor fleet exists.
func (s *Session) initFleet() error {
	workers, err := fleetd.Workers(s.fleetReg)
	if err != nil {
		return fmt.Errorf("lfi: WithFleet(%q): discovering workers: %w", s.fleetReg, err)
	}
	w := &fleetWatch{
		registry: s.fleetReg,
		fleet:    s.fleet,
		dialed:   make(map[string]bool),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	w.log = func(format string, args ...any) {
		if s.log != nil {
			fmt.Fprintf(s.log, format+"\n", args...)
		}
	}
	added, _ := w.sync(workers)
	w.log("lfi: fleet: registry %s: %d worker(s) discovered, %d dialed", s.fleetReg, len(workers), added)
	go w.run(fleetd.DefaultHeartbeat)
	s.fleetWatcher = w
	s.publisher = newFleetPublisher(s.fleetReg)
	return nil
}

// FleetStatus fetches the registry's merged status document — workers,
// throughput, and the latest published campaign snapshot (the engine
// behind `lfi fleet status`).
func FleetStatus(registry string) (*FleetStatusDoc, error) {
	return fleetd.FetchStatus(registry)
}

// Fleet service types, re-exported for status consumers.
type (
	// FleetStatusDoc is the registry's full status document.
	FleetStatusDoc = fleetd.Status
	// FleetWorker is one registered worker's record.
	FleetWorker = fleetd.Worker
	// FleetCampaignStatus is a coordinator's published progress.
	FleetCampaignStatus = fleetd.CampaignStatus
)

// NewFleetRegistry builds a fleetd registry server (an http.Handler;
// serve it with its Serve method) — the engine behind
// `lfi fleet registry`. Zero heartbeat/miss take the defaults.
var NewFleetRegistry = fleetd.NewServer

// Registry timing defaults, re-exported for flag defaults and tests.
const (
	// DefaultFleetHeartbeat is the interval a registry assigns workers.
	DefaultFleetHeartbeat = fleetd.DefaultHeartbeat
	// DefaultFleetMiss is how many silent intervals cost a worker its
	// registration.
	DefaultFleetMiss = fleetd.DefaultMiss
)

// PatchWorkerSystem replaces the registered system named in spec
// ("system:function") with a copy whose image carries an inert
// one-function patch: execution is unchanged, but the image version and
// that function's fingerprint move, so this process serves as a
// deliberately mixed-build worker — the engine behind
// `lfi serve -patch`, for exercising the reconciliation path end to
// end. (Contrast PatchSystem, which returns a detached copy for the
// coordinator side.)
var PatchWorkerSystem = exec.PatchWorkerSystem

// ServeRegistered is ServeExecutor plus fleet membership: when registry
// is non-empty the worker self-registers there and heartbeats its
// execution counters until ctx ends, re-registering whenever the
// registry forgets it — the engine behind `lfi serve -register`.
// advertise overrides the announced dial-back address (needed when the
// listener is bound to a wildcard or NAT'd interface); empty means the
// listener's own address.
func ServeRegistered(ctx context.Context, ln net.Listener, workers int, logw io.Writer, registry, advertise string) error {
	opts := exec.ServeOptions{Workers: workers, Log: logw}
	if registry != "" {
		if advertise == "" {
			advertise = ln.Addr().String()
		}
		opts.Counters = new(exec.ServeCounters)
		agent := fleetd.NewAgent(registry, exec.WorkerRegistration(advertise, workers), opts.Counters.Stats)
		agent.Log = logw
		go agent.Run(ctx)
	}
	return exec.ServeWith(ctx, ln, opts)
}
