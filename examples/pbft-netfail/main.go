// PBFT-netfail example: the §7.3 study — degrade the network under a
// running PBFT cluster with LFI's distributed triggers and watch the
// throughput respond (the Figure 3 measurement, in miniature).
//
//	go run ./examples/pbft-netfail
package main

import (
	"fmt"
	"log"
	"time"

	"lfi/internal/core"
	"lfi/internal/distsim"
	"lfi/internal/pbft"
	"lfi/internal/scenario"
)

func main() {
	lossScenario := `
	<scenario name="degraded-network">
	  <trigger id="loss" class="DistributedTrigger" />
	  <function name="sendto" return="-1" errno="EAGAIN"><reftrigger ref="loss" /></function>
	  <function name="recvfrom" return="-1" errno="EINTR"><reftrigger ref="loss" /></function>
	</scenario>`

	var baseline time.Duration
	for _, p := range []float64{0, 0.5, 0.85} {
		s, err := scenario.ParseString(lossScenario)
		if err != nil {
			log.Fatal(err)
		}
		// Central controller with a loss policy: every replica's
		// distributed trigger consults it, giving a global view.
		ctrl := distsim.NewController(distsim.NewLossPolicy(p, 42))

		cl := pbft.NewCluster(1, pbft.BuildPatched) // f=1: 4 replicas
		if err := cl.InstallScenario(s, core.WithDecider(ctrl)); err != nil {
			log.Fatal(err)
		}
		if err := cl.Start(); err != nil {
			log.Fatal(err)
		}
		completed, perOp := cl.RunPaced(10, 20*time.Millisecond, 3*time.Second)
		cl.Stop()

		slow := 1.0
		if p == 0 {
			baseline = perOp
		} else if baseline > 0 {
			slow = float64(perOp) / float64(baseline)
		}
		fmt.Printf("loss=%.2f  completed=%2d/10  per-op=%-8v slowdown=%.2fx  (controller consulted %d times)\n",
			p, completed, perOp.Round(time.Millisecond), slow, ctrl.Consulted())
	}
}
