// Callsite-audit example: the fully automatic pipeline of §7.1 on the
// Git stand-in — profile the libraries, analyze the application binary,
// generate injection scenarios for the vulnerable sites, run them, and
// report the bugs found, with no knowledge of the code.
//
//	go run ./examples/callsite-audit
package main

import (
	"context"
	"fmt"
	"log"

	"lfi"
	"lfi/internal/apps/minivcs"
	"lfi/internal/callsite"
	"lfi/internal/controller"
	"lfi/internal/libspec"
	"lfi/internal/profile"
)

func main() {
	// 1. Profile the shared libraries (static analysis of the library
	// binaries -> error returns + errno side effects).
	libc := profile.ProfileBinary(libspec.BuildLibc())
	fmt.Printf("profiled %d libc functions; e.g. read() error codes: %v\n",
		len(libc.FuncNames()), libc.Func("read").ErrorCodes())

	// 2. Analyze the target binary (Algorithm 1).
	bin, _ := minivcs.Binary()
	a := &callsite.Analyzer{}
	rep := a.Analyze(bin, libc)
	yes, part, not := rep.ByClass()
	fmt.Printf("%s: %d sites -> %d checked, %d partial, %d unchecked\n",
		bin.Name, len(rep.Sites), len(yes), len(part), len(not))
	for _, s := range not {
		fmt.Printf("  suspicious: %s called at %#x in %s (no error check found)\n",
			s.Callee, s.Offset, s.Caller)
	}

	// 3. Generate scenarios for the vulnerable sites and run the
	// default test suite once per scenario, through the Session API
	// (minivcs resolves from the system registry by name).
	scens := callsite.GenerateScenarios(bin, append(not, part...), libc)
	fmt.Printf("\nrunning %d generated scenarios against the test suite...\n\n", len(scens))
	sys, ok := lfi.LookupSystem(minivcs.Module)
	if !ok {
		log.Fatal("minivcs not registered")
	}
	sess, err := lfi.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	rep2, err := sess.Run(context.Background(), sys, scens)
	if err != nil {
		log.Fatal(err)
	}
	outs := rep2.Outcomes

	// 4. Report distinct crashes (gracefully handled injections are
	// recovery working as intended, so they are not bugs).
	var crashes []controller.Outcome
	for _, o := range outs {
		if o.Crash != nil {
			crashes = append(crashes, o)
		}
	}
	bugs := controller.DistinctBugs(minivcs.Module, crashes)
	fmt.Printf("found %d distinct bugs:\n", len(bugs))
	for _, b := range bugs {
		fmt.Printf("  %s\n", b.Signature)
	}
}
