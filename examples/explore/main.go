// Explore: discover bugs and cover recovery code without writing a
// single scenario — through the Session API.
//
// One lfi.Session owns the campaign knobs (store root, worker pool,
// budget) and drives the coverage-guided fault-space explorer against
// registered target systems. The explorer enumerates candidate
// injections from the library fault profiles crossed with the call-site
// analysis, schedules them in batches steered toward uncovered recovery
// blocks, and persists outcomes in a sharded store — so a second run
// replays instead of re-executing, and `ExploreAll` fans one session
// out over every registered system at once.
//
//	go run ./examples/explore
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lfi"
)

func main() {
	storeDir, err := os.MkdirTemp("", "lfi-explore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeDir)
	ctx := context.Background()

	// One session for everything below: shared store root, shared
	// worker pool. StallBatches is raised so runs drain their whole
	// candidate queue (bred window mutants included) and the resume
	// demos can replay everything.
	sess, err := lfi.NewSession(
		lfi.WithStore(filepath.Join(storeDir, "store")),
		lfi.WithStallBatches(1000),
		lfi.WithLog(os.Stdout),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// --- minidb: the MySQL stand-in --------------------------------
	//
	// Table 1 finds its two bugs (a double mutex unlock in mi_create's
	// recovery path, a crash on an uninitialized errmsg structure)
	// with hand-seeded random injection. The explorer finds both from
	// first principles.
	minidb, ok := lfi.LookupSystem("minidb")
	if !ok {
		log.Fatal("minidb not registered")
	}
	fmt.Println("=== exploring minidb ===")
	res, err := sess.Explore(ctx, minidb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	crashes := 0
	for _, b := range res.Bugs {
		if b.IsCrash() {
			crashes++
		}
	}
	fmt.Printf("\n%d crash bugs discovered without any hand-written scenario\n\n", crashes)

	// --- the same run again: nothing to execute --------------------
	//
	// The store keys every outcome by scenario hash + targeted-code
	// hash; with the target unchanged, the second run replays
	// everything and executes no test. Store.Stats (the `lfi explore
	// -v` report) shows the whole cache migrating forward.
	fmt.Println("=== exploring minidb again (resumes from the store) ===")
	res2, err := sess.Explore(ctx, minidb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d, replayed %d — the whole campaign came from the store\n", res2.Executed, res2.Replayed)
	fmt.Printf("%s\n\n", res2.StoreStats)

	// --- every registered system in one session --------------------
	//
	// ExploreAll is `lfi explore -all`: one session fans out over the
	// registry with a shared worker pool, the shared store root (so
	// the minidb results above replay for free) and a shared budget,
	// interleaving batches across systems by how many recovery blocks
	// each still has uncovered. The release-build PBFT view-change
	// crash is in the haul — reachable only through the explorer's
	// occurrence-window mutants, since it needs both the REQUEST and
	// the PRE-PREPARE lost.
	fmt.Println("=== exploring every registered system (`lfi explore -all`) ===")
	all, err := sess.ExploreAll(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(all)
	fmt.Println("\ncrash bugs across all systems:")
	for _, b := range all.CrashBugs() {
		fmt.Printf("  %-8s %s\n    found by %s\n", b.System, b.Signature, b.Scenarios[0])
	}
}
