// Explore: discover bugs and cover recovery code without writing a
// single scenario.
//
// This walkthrough drives the coverage-guided fault-space explorer
// against two of the built-in target systems. The explorer enumerates
// candidate injections from the library fault profiles crossed with the
// call-site analysis (which error values can each imported function
// return, at which call sites does the program fail to check them, and
// at which dynamic occurrence), then schedules them in batches,
// steering toward candidates that can still reach uncovered recovery
// blocks. Outcomes persist in a JSON store, so running this example
// twice replays the first run's results instead of re-executing them.
//
//	go run ./examples/explore
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lfi/internal/explore"
)

func main() {
	storeDir, err := os.MkdirTemp("", "lfi-explore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeDir)

	// --- minidb: the MySQL stand-in --------------------------------
	//
	// Table 1 finds its two bugs (a double mutex unlock in mi_create's
	// recovery path, a crash on an uninitialized errmsg structure)
	// with hand-seeded random injection. The explorer finds both from
	// first principles. StallBatches is raised so the run drains its
	// whole queue (including bred window mutants) and the resume demo
	// below can replay everything.
	cfg, _ := explore.ConfigFor("minidb")
	cfg.Store = filepath.Join(storeDir, "store")
	cfg.StallBatches = 1000
	cfg.Log = os.Stdout

	fmt.Println("=== exploring minidb ===")
	res, err := explore.Explore(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	crashes := 0
	for _, b := range res.Bugs {
		if b.IsCrash() {
			crashes++
		}
	}
	fmt.Printf("\n%d crash bugs discovered without any hand-written scenario\n\n", crashes)

	// --- the same run again: nothing to execute --------------------
	//
	// The store keys every outcome by scenario hash + targeted-code
	// hash; with the target unchanged, the second run replays
	// everything and executes no test.
	fmt.Println("=== exploring minidb again (resumes from the store) ===")
	res2, err := explore.Explore(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d, replayed %d — the whole campaign came from %s\n\n",
		res2.Executed, res2.Replayed, filepath.Base(cfg.Store))

	// --- minivcs: the Git stand-in, on a budget --------------------
	//
	// A budget bounds the run; the scheduler spends it on the
	// candidates most likely to reach uncovered recovery code first.
	// Both systems share one store root: each gets its own shard
	// directory underneath it.
	vcs, _ := explore.ConfigFor("minivcs")
	vcs.Store = filepath.Join(storeDir, "store")
	vcs.MaxRuns = 60
	vcs.Log = os.Stdout

	fmt.Println("=== exploring minivcs (budget: 60 runs) ===")
	vres, err := explore.Explore(vcs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(vres)

	// --- pbft: window mutation earns its keep ----------------------
	//
	// The release-build view-change crash needs a *burst* of lost
	// receives: dropping only the request or only the pre-prepare is
	// repaired by PBFT's request dissemination, so no single generated
	// candidate can trigger it. An occurrence candidate that reaches
	// the receive-failure recovery path breeds CallCount from/to
	// window mutants (widen / shift / split), and one of those loses
	// both datagrams — the commit quorum then records a contentless
	// entry the NEW-VIEW dereferences.
	bft, _ := explore.ConfigFor("pbft")
	bft.Log = os.Stdout

	fmt.Println("\n=== exploring pbft (scripted replica harness) ===")
	bres, err := explore.Explore(bft)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bres)
	for _, b := range bres.Bugs {
		if b.IsCrash() && len(b.Scenarios) > 0 {
			fmt.Printf("  %s\n    found by %s\n", b.Signature, b.Scenarios[0])
		}
	}
}
