// Quickstart: intercept a program's library calls, inject a fault on
// the second read(), and inspect the injection log.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lfi/internal/core"
	"lfi/internal/errno"
	"lfi/internal/libsim"
	"lfi/internal/scenario"
)

func main() {
	// 1. A simulated process with a file to read.
	proc := libsim.New(1 << 20)
	proc.MustWriteFile("/data/input.txt", []byte("hello, fault injection"))
	th := proc.NewThread("quickstart", "main")

	// 2. A fault injection scenario in LFI's XML language: fail the
	// second read() with -1/EINTR, exactly once.
	s, err := scenario.ParseString(`
	<scenario name="quickstart">
	  <trigger id="second" class="CallCountTrigger"><args><n>2</n></args></trigger>
	  <function name="read" argc="3" return="-1" errno="EINTR">
	    <reftrigger ref="second" />
	  </function>
	</scenario>`)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compile the scenario and splice the LFI runtime in front of
	// the simulated C library.
	rt, err := core.New(proc, s)
	if err != nil {
		log.Fatal(err)
	}
	rt.Install()
	defer rt.Uninstall()

	// 4. The program under test: read the file in 8-byte chunks,
	// retrying on EINTR the way robust recovery code should.
	fd := th.Open("/data/input.txt", libsim.O_RDONLY)
	if fd < 0 {
		log.Fatalf("open: %v", th.Errno())
	}
	var out []byte
	buf := make([]byte, 8)
	for {
		n := th.Read(fd, buf)
		if n == -1 {
			if th.Errno() == errno.EINTR {
				fmt.Println("read interrupted (EINTR) — retrying, as recovery code should")
				continue
			}
			log.Fatalf("read: %v", th.Errno())
		}
		if n == 0 {
			break
		}
		out = append(out, buf[:n]...)
	}
	th.Close(fd)

	fmt.Printf("read back: %q\n", out)
	fmt.Printf("\ninjection log:\n%s", rt.Log())
}
