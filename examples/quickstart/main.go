// Quickstart: the public lfi API in two bites.
//
// Part 1 — the raw injection engine: intercept a program's library
// calls, inject a fault on the second read(), and inspect the
// injection log.
//
// Part 2 — the Session API: look a registered target system up in the
// registry and run a scenario campaign against its test suite through
// one context-aware Session.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"lfi"
)

func main() {
	// --- Part 1: a scenario against a bare simulated process -------

	// 1. A simulated process with a file to read.
	proc := lfi.NewProcess(1 << 20)
	proc.MustWriteFile("/data/input.txt", []byte("hello, fault injection"))
	th := proc.NewThread("quickstart", "main")

	// 2. A fault injection scenario in LFI's XML language: fail the
	// second read() with -1/EINTR, exactly once.
	s, err := lfi.ParseScenarioString(`
	<scenario name="quickstart">
	  <trigger id="second" class="CallCountTrigger"><args><n>2</n></args></trigger>
	  <function name="read" argc="3" return="-1" errno="EINTR">
	    <reftrigger ref="second" />
	  </function>
	</scenario>`)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compile the scenario and splice the LFI runtime in front of
	// the simulated C library.
	rt, err := lfi.NewRuntime(proc, s)
	if err != nil {
		log.Fatal(err)
	}
	rt.Install()
	defer rt.Uninstall()

	// 4. The program under test: read the file in 8-byte chunks,
	// retrying on EINTR the way robust recovery code should.
	fd := th.Open("/data/input.txt", lfi.O_RDONLY)
	if fd < 0 {
		log.Fatalf("open: %v", th.Errno())
	}
	var out []byte
	buf := make([]byte, 8)
	for {
		n := th.Read(fd, buf)
		if n == -1 {
			if th.Errno() == lfi.EINTR {
				fmt.Println("read interrupted (EINTR) — retrying, as recovery code should")
				continue
			}
			log.Fatalf("read: %v", th.Errno())
		}
		if n == 0 {
			break
		}
		out = append(out, buf[:n]...)
	}
	th.Close(fd)

	fmt.Printf("read back: %q\n", out)
	fmt.Printf("\ninjection log:\n%s\n", rt.Log())

	// --- Part 2: the same idea against a whole registered system ---

	// Target systems self-register descriptors (internal/system/all),
	// so the registry knows how to build, run and measure each one.
	sys, ok := lfi.LookupSystem("minivcs")
	if !ok {
		log.Fatal("minivcs not registered")
	}
	fmt.Printf("registered systems: %v\n", lfi.SystemNames())
	fmt.Printf("target %s: %s\n\n", sys.Name, sys.Workload)

	// One Session unifies single runs and campaigns: it owns the
	// worker pool, streams outcomes as they complete, and cancels
	// cleanly with the context.
	var scens []*lfi.Scenario
	for _, doc := range []string{
		// Handled gracefully: one EINTR deep in the suite.
		`<scenario name="transient-close-eintr">
		  <trigger id="once" class="CallCountTrigger"><args><n>2</n></args></trigger>
		  <function name="close" return="-1" errno="EINTR"><reftrigger ref="once" /></function>
		</scenario>`,
		// Not handled: sustained allocation failure crashes the suite.
		`<scenario name="malloc-exhaustion">
		  <trigger id="all" class="CallCountTrigger"><args><from>1</from><to>200</to></args></trigger>
		  <function name="malloc" return="0" errno="ENOMEM"><reftrigger ref="all" /></function>
		</scenario>`,
	} {
		sc, err := lfi.ParseScenarioString(doc)
		if err != nil {
			log.Fatal(err)
		}
		scens = append(scens, sc)
	}
	sess, err := lfi.NewSession(
		lfi.WithWorkers(2),
		lfi.WithObserver(func(system string, o lfi.Outcome) {
			fmt.Printf("  [%s] %s\n", system, o)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	rep, err := sess.Run(context.Background(), sys, scens)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d/%d runs failed, %d distinct failure signatures\n",
		rep.Failures, len(rep.Outcomes), len(rep.Bugs))
	for _, b := range rep.Bugs {
		fmt.Printf("  %s\n", b.Signature)
	}
}
