// Custom-trigger example: the paper's §4.2 composition — inject a fault
// into read() only when the descriptor is a pipe, the requested size is
// between 1 KB and 4 KB, and the calling thread holds a mutex. Built
// from two reusable triggers (ReadPipe ∧ WithMutex) plus a custom
// trigger registered from application code.
//
//	go run ./examples/custom-trigger
package main

import (
	"fmt"
	"log"

	"lfi/internal/core"
	"lfi/internal/interpose"
	"lfi/internal/libsim"
	"lfi/internal/scenario"
	"lfi/internal/trigger"
)

// EvenCallTrigger is a trivial custom trigger class: it fires on
// even-numbered interceptions. Registering it makes it available to any
// scenario by class name — the paper's drop-the-class-in-a-directory
// extensibility.
type EvenCallTrigger struct {
	trigger.Base
}

// Eval fires on even per-function call counts.
func (t *EvenCallTrigger) Eval(call *interpose.Call) bool {
	return call.Count%2 == 0
}

func main() {
	trigger.Register("EvenCallTrigger", func() trigger.Trigger { return &EvenCallTrigger{} })

	proc := libsim.New(1 << 20)
	th := proc.NewThread("pipes", "main")

	// The §4.2 scenario: ReadPipe(1K..4K) ∧ WithMutex on read, with
	// the mutex-tracking association observing lock/unlock. Our extra
	// custom trigger narrows it to even-numbered reads.
	s, err := scenario.ParseString(`
	<scenario name="pipe-read-composition">
	  <trigger id="readTrig2" class="ReadPipe">
	    <args><low>1024</low><high>4096</high></args>
	  </trigger>
	  <trigger id="mutexTrig" class="WithMutex" />
	  <trigger id="evenTrig" class="EvenCallTrigger" />
	  <function name="read" argc="3" return="-1" errno="EINVAL">
	    <reftrigger ref="readTrig2" />
	    <reftrigger ref="mutexTrig" />
	    <reftrigger ref="evenTrig" />
	  </function>
	</scenario>`)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := core.New(proc, s)
	if err != nil {
		log.Fatal(err)
	}
	rt.Install()
	defer rt.Uninstall()

	var fds [2]int64
	th.Pipe(&fds)
	mtx := proc.MutexInit()

	write := func(n int) { th.Write(fds[1], make([]byte, n)) }
	read := func(n int, locked bool) {
		if locked {
			th.MutexLock(mtx)
			defer th.MutexUnlock(mtx)
		}
		buf := make([]byte, n)
		got := th.Read(fds[0], buf)
		fmt.Printf("read(pipe, %4d bytes) locked=%-5v -> %4d errno=%v\n",
			n, locked, got, th.Errno())
	}

	write(8192)
	read(2048, false) // pipe + in range, but no mutex -> passes
	read(2048, true)  // call #2: all three triggers true -> injected
	read(512, true)   // size out of range -> passes
	read(2048, true)  // call #4, all true -> injected
	read(2048, true)  // call #5: odd -> passes

	fmt.Printf("\n%d injections:\n%s", rt.Log().Len(), rt.Log())
}
