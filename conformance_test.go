package lfi

import (
	"context"
	"strings"
	"testing"

	"lfi/internal/callgraph"
	"lfi/internal/controller"
	"lfi/internal/coverage"
)

// lintGoldens pins the interprocedural site-class tally of every
// built-in system (`lfi lint`): the paper's windowed classes refined by
// the whole-program analysis. Swallowed counts the planted
// error-dropping sites — each is a dead recovery block; checked-in-
// caller is 0 because the stock applications make no internal calls
// (the demotion is pinned on synthetic binaries in internal/callgraph).
var lintGoldens = map[string]callgraph.Counts{
	"minidb":  {Checked: 15, Partial: 1, Unchecked: 0, Swallowed: 0, CheckedInCaller: 0},
	"minidns": {Checked: 23, Partial: 1, Unchecked: 1, Swallowed: 1, CheckedInCaller: 0},
	"minivcs": {Checked: 18, Partial: 1, Unchecked: 0, Swallowed: 5, CheckedInCaller: 0},
	"miniweb": {Checked: 7, Partial: 0, Unchecked: 0, Swallowed: 1, CheckedInCaller: 0},
	"pbft":    {Checked: 3, Partial: 0, Unchecked: 0, Swallowed: 3, CheckedInCaller: 0},
	"raft":    {Checked: 3, Partial: 0, Unchecked: 0, Swallowed: 4, CheckedInCaller: 0},
}

// runsToAllBugsCeiling pins the explorer's executed outcomes until the
// last stock Table-1 bug surfaces (batch granularity), with the static
// prior active — measured before the prior landed and required not to
// regress. Exploration is deterministic under the session seed, so
// these are exact.
var runsToAllBugsCeiling = map[string]int{
	"minidb":  48,
	"minidns": 64,
	"minivcs": 16,
	"miniweb": 16,
	"pbft":    144,
	"raft":    544,
}

// TestSystemRegistryConformance is the descriptor contract, enforced
// for every registered system in one table-driven sweep: the binary
// assembles with a site map, the libraries profile cleanly, both
// controller adapters run the default suite, the coverage adapter
// actually accumulates, and — the acceptance bar — Session.Explore
// rediscovers every stock Table-1 crash bug with no hand-written
// scenario, window-only bugs strictly through bred window mutants
// (stack-window-only bugs strictly through bred call-stack windows).
// This subsumes the per-system stock-bug tests the explorer used to
// carry: a new system registers a descriptor in its own package and is
// held to the same bar with no new test code.
func TestSystemRegistryConformance(t *testing.T) {
	systems := Systems()
	for _, want := range []string{"minidb", "minidns", "minivcs", "miniweb", "pbft", "raft"} {
		if _, ok := LookupSystem(want); !ok {
			t.Fatalf("built-in system %q not registered", want)
		}
	}
	if len(systems) < 6 {
		t.Fatalf("registry lists %d systems, want >= 6", len(systems))
	}

	for _, sys := range systems {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			// Descriptor shape.
			bin, offs := sys.Binary()
			if bin == nil || len(bin.Code) == 0 {
				t.Fatal("Binary() returned no image")
			}
			if len(offs) == 0 {
				t.Fatal("Binary() returned no site-label offsets")
			}
			if sys.Workload == "" {
				t.Error("descriptor names no workload suite")
			}
			if len(sys.StockBugs) == 0 {
				t.Fatal("descriptor advertises no stock bugs")
			}

			// Libraries profile cleanly.
			profs := sys.Profiles()
			if len(profs) == 0 {
				t.Fatal("Profiles() returned nothing")
			}
			for _, p := range profs {
				if p == nil || len(p.FuncNames()) == 0 {
					t.Fatalf("library profile empty: %+v", p)
				}
			}

			// Both controller adapters run the default suite; the
			// coverage adapter must register a block universe with
			// recovery blocks and merge per-run hits.
			if out, err := controller.RunOne(sys.Target(), nil); err != nil || out.Failed() {
				t.Fatalf("default suite failed under Target(): err=%v out=%v", err, out)
			}
			acc := coverage.New()
			if out, err := controller.RunOne(sys.TargetWithCoverage(acc), nil); err != nil || out.Failed() {
				t.Fatalf("default suite failed under TargetWithCoverage(): err=%v out=%v", err, out)
			}
			if len(acc.RegisteredIDs()) == 0 {
				t.Fatal("coverage adapter registered no blocks")
			}
			if len(acc.RecoveryIDs()) == 0 {
				t.Fatal("coverage adapter registered no recovery blocks")
			}
			if len(acc.CoveredIDs()) == 0 {
				t.Fatal("coverage adapter merged no hits from the suite")
			}

			// The static analysis contract: the interprocedural lint
			// reproduces the pinned site-class tally, and every
			// swallowed site names a dead recovery block.
			sess := mustSession(t, WithWorkers(4), WithStallBatches(1000))
			if want, pinned := lintGoldens[sys.Name]; pinned {
				rep, err := sess.Lint(sys)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Counts != want {
					t.Errorf("lint counts %+v, want %+v", rep.Counts, want)
				}
				if len(rep.DeadBlocks) != rep.Counts.Swallowed {
					t.Errorf("dead recovery blocks %v vs %d swallowed sites",
						rep.DeadBlocks, rep.Counts.Swallowed)
				}
			}

			// The acceptance bar: exploration through the Session API
			// rediscovers every advertised stock bug.
			res, err := sess.Explore(context.Background(), sys)
			if err != nil {
				t.Fatal(err)
			}
			remaining := make(map[string]bool, len(sys.StockBugs))
			for _, sb := range sys.StockBugs {
				remaining[sb.Match] = true
			}
			runsToAll := 0
			for _, b := range res.Batches {
				runsToAll += b.Runs
				for _, sig := range b.NewBugs {
					for m := range remaining {
						if strings.Contains(sig, m) {
							delete(remaining, m)
						}
					}
				}
				if len(remaining) == 0 {
					break
				}
			}
			if ceil, pinned := runsToAllBugsCeiling[sys.Name]; pinned && len(remaining) == 0 && runsToAll > ceil {
				t.Errorf("executed %d outcomes before the last stock bug, ceiling %d — the static prior regressed the schedule", runsToAll, ceil)
			}
			for _, sb := range sys.StockBugs {
				found := false
				for _, b := range res.Bugs {
					if !b.IsCrash() || !strings.Contains(b.Signature, sb.Match) {
						continue
					}
					found = true
					if sb.WindowOnly {
						for _, name := range b.Scenarios {
							if !strings.Contains(name, "explore-win-") && !strings.Contains(name, "explore-swin-") {
								t.Errorf("window-only bug %q found by non-window scenario %q", sb.Match, name)
							}
						}
					}
					if sb.StackWindowOnly {
						for _, name := range b.Scenarios {
							if !strings.Contains(name, "explore-swin-") {
								t.Errorf("stack-window-only bug %q found by non-stack-window scenario %q", sb.Match, name)
							}
						}
					}
				}
				if !found {
					t.Errorf("stock bug not rediscovered: %q (%s)\n%s", sb.Match, sb.Note, res)
				}
			}
		})
	}
}
