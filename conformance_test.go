package lfi

import (
	"context"
	"strings"
	"testing"

	"lfi/internal/controller"
	"lfi/internal/coverage"
)

// TestSystemRegistryConformance is the descriptor contract, enforced
// for every registered system in one table-driven sweep: the binary
// assembles with a site map, the libraries profile cleanly, both
// controller adapters run the default suite, the coverage adapter
// actually accumulates, and — the acceptance bar — Session.Explore
// rediscovers every stock Table-1 crash bug with no hand-written
// scenario, window-only bugs strictly through bred window mutants
// (stack-window-only bugs strictly through bred call-stack windows).
// This subsumes the per-system stock-bug tests the explorer used to
// carry: a new system registers a descriptor in its own package and is
// held to the same bar with no new test code.
func TestSystemRegistryConformance(t *testing.T) {
	systems := Systems()
	for _, want := range []string{"minidb", "minidns", "minivcs", "miniweb", "pbft", "raft"} {
		if _, ok := LookupSystem(want); !ok {
			t.Fatalf("built-in system %q not registered", want)
		}
	}
	if len(systems) < 6 {
		t.Fatalf("registry lists %d systems, want >= 6", len(systems))
	}

	for _, sys := range systems {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			// Descriptor shape.
			bin, offs := sys.Binary()
			if bin == nil || len(bin.Code) == 0 {
				t.Fatal("Binary() returned no image")
			}
			if len(offs) == 0 {
				t.Fatal("Binary() returned no site-label offsets")
			}
			if sys.Workload == "" {
				t.Error("descriptor names no workload suite")
			}
			if len(sys.StockBugs) == 0 {
				t.Fatal("descriptor advertises no stock bugs")
			}

			// Libraries profile cleanly.
			profs := sys.Profiles()
			if len(profs) == 0 {
				t.Fatal("Profiles() returned nothing")
			}
			for _, p := range profs {
				if p == nil || len(p.FuncNames()) == 0 {
					t.Fatalf("library profile empty: %+v", p)
				}
			}

			// Both controller adapters run the default suite; the
			// coverage adapter must register a block universe with
			// recovery blocks and merge per-run hits.
			if out, err := controller.RunOne(sys.Target(), nil); err != nil || out.Failed() {
				t.Fatalf("default suite failed under Target(): err=%v out=%v", err, out)
			}
			acc := coverage.New()
			if out, err := controller.RunOne(sys.TargetWithCoverage(acc), nil); err != nil || out.Failed() {
				t.Fatalf("default suite failed under TargetWithCoverage(): err=%v out=%v", err, out)
			}
			if len(acc.RegisteredIDs()) == 0 {
				t.Fatal("coverage adapter registered no blocks")
			}
			if len(acc.RecoveryIDs()) == 0 {
				t.Fatal("coverage adapter registered no recovery blocks")
			}
			if len(acc.CoveredIDs()) == 0 {
				t.Fatal("coverage adapter merged no hits from the suite")
			}

			// The acceptance bar: exploration through the Session API
			// rediscovers every advertised stock bug.
			sess := mustSession(t, WithWorkers(4), WithStallBatches(1000))
			res, err := sess.Explore(context.Background(), sys)
			if err != nil {
				t.Fatal(err)
			}
			for _, sb := range sys.StockBugs {
				found := false
				for _, b := range res.Bugs {
					if !b.IsCrash() || !strings.Contains(b.Signature, sb.Match) {
						continue
					}
					found = true
					if sb.WindowOnly {
						for _, name := range b.Scenarios {
							if !strings.Contains(name, "explore-win-") && !strings.Contains(name, "explore-swin-") {
								t.Errorf("window-only bug %q found by non-window scenario %q", sb.Match, name)
							}
						}
					}
					if sb.StackWindowOnly {
						for _, name := range b.Scenarios {
							if !strings.Contains(name, "explore-swin-") {
								t.Errorf("stack-window-only bug %q found by non-stack-window scenario %q", sb.Match, name)
							}
						}
					}
				}
				if !found {
					t.Errorf("stock bug not rediscovered: %q (%s)\n%s", sb.Match, sb.Note, res)
				}
			}
		})
	}
}
