package lfi

import (
	"context"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"lfi/internal/impact"
)

// TestSessionImpactWorkflow drives the incremental re-exploration
// workflow end to end through the facade, for every registered system:
// explore with a store, apply an inert one-function patch
// (PatchSystem), preview the classification with Session.Diff, then
// re-explore under WithImpact — every cached entry is accounted for
// exactly once, and every advertised stock Table-1 bug is still found
// after the edit, whether the analysis bounded it or fell back to
// whole-shard invalidation (minidns's hidden indirect jump exercises
// the fallback arm when its first function is the patched one).
func TestSessionImpactWorkflow(t *testing.T) {
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			sess := mustSession(t,
				WithWorkers(4),
				WithStallBatches(1000),
				WithStore(filepath.Join(t.TempDir(), "store")),
				WithImpact(),
			)
			first, err := sess.Explore(context.Background(), sys)
			if err != nil {
				t.Fatal(err)
			}
			if first.Executed == 0 || first.Impact != nil {
				t.Fatalf("first run: executed %d, impact %+v; want a plain full run", first.Executed, first.Impact)
			}

			// Patch the alphabetically first application function —
			// whichever it is; the contract below holds for any edit.
			bin, _ := sys.Binary()
			var fns []string
			for fn := range impact.FuncHashes(bin) {
				fns = append(fns, fn)
			}
			sort.Strings(fns)
			psys, err := PatchSystem(sys, fns[0])
			if err != nil {
				t.Fatal(err)
			}

			rep, err := sess.Diff(psys)
			if err != nil {
				t.Fatal(err)
			}
			if rep.PrevImage == "" {
				t.Fatalf("diff found no previous image fingerprints: %+v", rep)
			}
			if rep.Set.Fallback {
				if rep.Revalidate == 0 {
					t.Fatalf("unbounded edit classified nothing for re-validation: %+v", rep)
				}
			} else if !strings.Contains(strings.Join(rep.Diff.Changed, " "), fns[0]) {
				t.Fatalf("diff missed the patched function %s: %+v", fns[0], rep.Diff)
			}

			second, err := sess.Explore(context.Background(), psys)
			if err != nil {
				t.Fatal(err)
			}
			if second.Impact == nil {
				t.Fatal("impact resume produced no summary")
			}
			if second.Executed+second.Replayed != first.Executed {
				t.Fatalf("executed %d + replayed %d, want total %d", second.Executed, second.Replayed, first.Executed)
			}
			if second.Replayed == 0 {
				t.Fatal("impact resume replayed nothing")
			}

			// The acceptance bar survives the edit: every stock bug is
			// still on the post-patch bug list.
			for _, sb := range sys.StockBugs {
				found := false
				for _, b := range second.Bugs {
					if b.IsCrash() && strings.Contains(b.Signature, sb.Match) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("stock bug lost across the patched resume: %q (%s)", sb.Match, sb.Note)
				}
			}
		})
	}
}
