// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§7), plus microbenchmarks of the injection fast path and
// the ablations called out in DESIGN.md. Each experiment benchmark
// regenerates its table/figure through internal/experiments and reports
// the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper end to end.
package lfi

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"lfi/internal/apps/minidb"
	"lfi/internal/apps/minivcs"
	"lfi/internal/apps/miniweb"
	"lfi/internal/callsite"
	"lfi/internal/controller"
	"lfi/internal/core"
	"lfi/internal/errno"
	"lfi/internal/experiments"
	"lfi/internal/explore"
	"lfi/internal/isa"
	"lfi/internal/libsim"
	"lfi/internal/libspec"
	"lfi/internal/profile"
	"lfi/internal/scenario"
)

// analyzedBinary is the binary the analyzer benchmarks run over.
func analyzedBinary() *isa.Binary {
	b, _ := minivcs.Binary()
	return b
}

// BenchmarkTable1BugHunt regenerates Table 1: the automatic bug-finding
// campaigns across all four target systems.
func BenchmarkTable1BugHunt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Bugs)), "bugs")
		b.ReportMetric(float64(res.Tests), "tests")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable2TriggerPrecision regenerates Table 2: precision of the
// three scenarios targeting the minidb double-unlock bug.
func BenchmarkTable2TriggerPrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(50)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Random, "random-%")
		b.ReportMetric(100*res.InFile, "infile-%")
		b.ReportMetric(100*res.AfterLock, "afterunlock-%")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable3Coverage regenerates Table 3: recovery-code coverage
// improvement from analyzer-generated scenarios.
func BenchmarkTable3Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.AdditionalRecoveryPct(), row.System+"-rec-%")
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable4AnalyzerAccuracy regenerates Table 4: call-site
// analysis accuracy against ground truth.
func BenchmarkTable4AnalyzerAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table4()
		correct, total := 0, 0
		for _, row := range res.Rows {
			correct += row.TP + row.TN
			total += row.Total()
		}
		b.ReportMetric(100*float64(correct)/float64(total), "accuracy-%")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable5WebOverhead regenerates Table 5: trigger-evaluation
// overhead on the miniweb server.
func BenchmarkTable5WebOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5(500)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxOverheadPct(), "max-overhead-%")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable6OLTPOverhead regenerates Table 6: trigger-evaluation
// overhead on the minidb OLTP workload.
func BenchmarkTable6OLTPOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table6(200 * time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxOverheadPct(), "max-overhead-%")
		b.ReportMetric(res.ReadOnly[0], "baseline-ro-tps")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure3PBFTSlowdown regenerates Figure 3: PBFT slowdown
// under progressively worsening network conditions.
func BenchmarkFigure3PBFTSlowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(8, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) > 0 {
			b.ReportMetric(res.Points[len(res.Points)-1].Slowdown, "max-slowdown-x")
		}
		if !res.Monotone(0.25) {
			b.Logf("warning: series not monotone: %+v", res.Points)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkDoSRotation regenerates the §7.3 DoS study.
func BenchmarkDoSRotation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DoS(20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RotationDrop, "rotation-drop-x")
		b.ReportMetric(100*res.SilenceDelta, "silence-delta-%")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkAnalyzerEfficiency reproduces the §7.2 efficiency claim:
// analysis time per binary (the paper: 1-10 s for >100 sites; the
// synthetic binaries analyze in microseconds).
func BenchmarkAnalyzerEfficiency(b *testing.B) {
	libc := profile.ProfileBinary(libspec.BuildLibc())
	bin := analyzedBinary()
	a := &callsite.Analyzer{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := a.Analyze(bin, libc)
		if len(rep.Sites) == 0 {
			b.Fatal("no sites")
		}
	}
}

// BenchmarkProfiler measures the library profiler over libc.
func BenchmarkProfiler(b *testing.B) {
	bin := libspec.BuildLibc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := profile.ProfileBinary(bin)
		if p.Func("read") == nil {
			b.Fatal("profile incomplete")
		}
	}
}

// --- microbenchmarks and ablations ------------------------------------------

// benchProc builds a process with one readable file.
func benchProc() (*libsim.C, *libsim.Thread) {
	c := libsim.New(1 << 20)
	c.MustWriteFile("/f", []byte("0123456789abcdef"))
	return c, c.NewThread("bench", "main")
}

// BenchmarkInterceptionBaseline measures a read() with no hook
// installed — the cost floor of the dispatch path.
func BenchmarkInterceptionBaseline(b *testing.B) {
	_, th := benchProc()
	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Lseek(fd, 0)
		th.Read(fd, buf)
	}
}

// triggerStack builds a scenario with n never-firing triggers on read.
func triggerStack(b *testing.B, n int) *scenario.Scenario {
	bld := scenario.NewBuilder("stack")
	refs := make([]string, n)
	for i := 0; i < n; i++ {
		refs[i] = bld.Trigger(
			string(rune('a'+i)), "CallCountTrigger",
			scenario.IntArgs("n", 1<<40), // never reached
		)
	}
	bld.Observe("read", refs...)
	s, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTriggerEvaluation1 measures read() with one trigger.
func BenchmarkTriggerEvaluation1(b *testing.B) { benchTriggers(b, 1) }

// BenchmarkTriggerEvaluation5 measures read() with five conjunct
// triggers (short-circuit keeps only the first evaluating... see the
// ablation below for the difference).
func BenchmarkTriggerEvaluation5(b *testing.B) { benchTriggers(b, 5) }

func benchTriggers(b *testing.B, n int) {
	c, th := benchProc()
	rt, err := core.New(c, triggerStack(b, n))
	if err != nil {
		b.Fatal(err)
	}
	rt.Install()
	defer rt.Uninstall()
	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Lseek(fd, 0)
		th.Read(fd, buf)
	}
}

// BenchmarkDispatchUninstrumented measures the pass-through fast path:
// a runtime is installed, but the dispatched function has no scenario
// entry, so the call must bail on the FuncID bitset without allocating
// (DESIGN.md "fast path": the §7.4 overhead floor).
func BenchmarkDispatchUninstrumented(b *testing.B) {
	c, th := benchProc()
	// Scenario touches write only; the benchmark dispatches read/lseek.
	bld := scenario.NewBuilder("uninstrumented")
	ref := bld.Trigger("t", "CallCountTrigger", scenario.IntArgs("n", 1<<40))
	bld.Inject("write", 0, -1, errno.ENOSPC, ref)
	s, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	rt, err := core.New(c, s)
	if err != nil {
		b.Fatal(err)
	}
	rt.Install()
	defer rt.Uninstall()
	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Lseek(fd, 0)
		th.Read(fd, buf)
	}
}

// BenchmarkDispatchInstrumentedMiss measures a dispatched function that
// HAS scenario entries whose trigger evaluates false: the full trigger
// path runs, but no stack capture and no injection happen.
func BenchmarkDispatchInstrumentedMiss(b *testing.B) {
	c, th := benchProc()
	rt, err := core.New(c, triggerStack(b, 1))
	if err != nil {
		b.Fatal(err)
	}
	rt.Install()
	defer rt.Uninstall()
	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Lseek(fd, 0)
		th.Read(fd, buf)
	}
}

// BenchmarkDispatchInstrumentedHit measures the injection path: every
// read fires the trigger, is failed with EIO, and is appended to the
// log (stack capture included — the paper's log records the call site).
func BenchmarkDispatchInstrumentedHit(b *testing.B) {
	c, th := benchProc()
	bld := scenario.NewBuilder("hit")
	ref := bld.Trigger("t", "CallCountTrigger", scenario.IntArgs("from", 1))
	bld.Inject("read", 3, -1, errno.EIO, ref)
	s, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	rt, err := core.New(c, s)
	if err != nil {
		b.Fatal(err)
	}
	rt.Install()
	defer rt.Uninstall()
	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if th.Read(fd, buf) != -1 {
			b.Fatal("injection missed")
		}
	}
	b.StopTimer()
	if got := rt.Injections(); got != uint64(b.N) {
		b.Fatalf("injections = %d, want %d", got, b.N)
	}
}

// BenchmarkCampaignParallel compares the sequential campaign engine
// against the worker-pool engine on the Table 1 minidb workload
// (independent full-suite runs under random close faults, one per
// scenario slot).
//
// Two regimes are measured. "cpu" is the raw in-memory suite: it scales
// with physical cores, so on a single-core box workers-8 only shows the
// pool's overhead. "io-2ms" charges each run a 2ms blocking wait — the
// stand-in for the process spawn + disk I/O that every run of the
// paper's real controller pays — which the worker pool overlaps even on
// one core.
func BenchmarkCampaignParallel(b *testing.B) {
	s, err := ParseScenarioString(`<scenario name="random-close-10">
	  <trigger id="rnd" class="RandomTrigger"><args><probability>0.1</probability></args></trigger>
	  <function name="close" return="-1" errno="EIO"><reftrigger ref="rnd" /></function>
	</scenario>`)
	if err != nil {
		b.Fatal(err)
	}
	const tests = 32
	scens := make([]*Scenario, tests)
	for i := range scens {
		scens[i] = s
	}
	withLatency := func(tgt Target, d time.Duration) Target {
		inner := tgt.Start
		tgt.Start = func() (*Process, func() error) {
			c, workload := inner()
			return c, func() error {
				time.Sleep(d)
				return workload()
			}
		}
		return tgt
	}
	for _, reg := range []struct {
		name string
		tgt  Target
	}{
		{"cpu", minidb.Target()},
		{"io-2ms", withLatency(minidb.Target(), 2*time.Millisecond)},
	} {
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/workers-%d", reg.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					outs, err := controller.CampaignParallel(reg.tgt, scens, workers, RuntimeSeed(1))
					if err != nil {
						b.Fatal(err)
					}
					if len(outs) != tests {
						b.Fatalf("%d outcomes", len(outs))
					}
				}
				b.ReportMetric(float64(tests)*float64(b.N)/b.Elapsed().Seconds(), "tests/s")
			})
		}
	}
}

// BenchmarkArenaRunReuse measures one full minidb suite run through the
// controller in steady state — the per-worker arena path. The app
// image, runtime overlay, and dispatch scratch are all pooled and
// recycled between runs, so allocs/op here is the per-run floor every
// campaign worker pays; the benchgate holds it flat.
func BenchmarkArenaRunReuse(b *testing.B) {
	s, err := ParseScenarioString(`<scenario name="arena-close-10">
	  <trigger id="rnd" class="RandomTrigger"><args><probability>0.1</probability></args></trigger>
	  <function name="close" return="-1" errno="EIO"><reftrigger ref="rnd" /></function>
	</scenario>`)
	if err != nil {
		b.Fatal(err)
	}
	tgt := minidb.Target()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := controller.RunOne(tgt, s, RuntimeSeed(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tests/s")
}

// BenchmarkAblationShortCircuit quantifies §4.3's short-circuit
// optimization: a 5-trigger conjunction whose FIRST trigger is false
// versus one whose first four are true (so all five evaluate).
func BenchmarkAblationShortCircuit(b *testing.B) {
	run := func(b *testing.B, firstFalse bool) {
		c, th := benchProc()
		bld := scenario.NewBuilder("ablation")
		first := "CallCountTrigger"
		args := scenario.IntArgs("n", 1<<40) // never true
		if !firstFalse {
			args = scenario.IntArgs("from", 1) // always true
		}
		refs := []string{bld.Trigger("t0", first, args)}
		for i := 1; i < 4; i++ {
			refs = append(refs, bld.Trigger(
				string(rune('a'+i)), "CallCountTrigger", scenario.IntArgs("from", 1)))
		}
		refs = append(refs, bld.Trigger("last", "CallCountTrigger", scenario.IntArgs("n", 1<<40)))
		bld.Observe("read", refs...)
		s, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		rt, err := core.New(c, s)
		if err != nil {
			b.Fatal(err)
		}
		rt.Install()
		defer rt.Uninstall()
		fd := th.Open("/f", libsim.O_RDONLY)
		buf := make([]byte, 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			th.Lseek(fd, 0)
			th.Read(fd, buf)
		}
		b.ReportMetric(float64(rt.Evals())/float64(b.N), "evals/call")
	}
	b.Run("first-false", func(b *testing.B) { run(b, true) })
	b.Run("all-evaluate", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationWindowSize measures analyzer cost and finding
// quality across CFG window sizes (DESIGN.md calls the 100-instruction
// window out as a design choice worth quantifying).
func BenchmarkAblationWindowSize(b *testing.B) {
	libc := profile.ProfileBinary(libspec.BuildLibc())
	bin := analyzedBinary()
	for _, w := range []int{10, 50, 100, 400} {
		b.Run(window(w), func(b *testing.B) {
			a := &callsite.Analyzer{Window: w}
			var unchecked int
			for i := 0; i < b.N; i++ {
				rep := a.Analyze(bin, libc)
				_, _, not := rep.ByClass()
				unchecked = len(not)
			}
			b.ReportMetric(float64(unchecked), "unchecked-sites")
		})
	}
}

func window(w int) string {
	switch w {
	case 10:
		return "window-10"
	case 50:
		return "window-50"
	case 100:
		return "window-100"
	default:
		return "window-400"
	}
}

// BenchmarkScenarioParse measures the XML language front end.
func BenchmarkScenarioParse(b *testing.B) {
	doc := `<scenario name="p">
	  <trigger id="readTrig2" class="ReadPipe"><args><low>1024</low><high>4096</high></args></trigger>
	  <trigger id="mutexTrig" class="WithMutex" />
	  <function name="read" argc="3" return="-1" errno="EINVAL">
	    <reftrigger ref="readTrig2" /><reftrigger ref="mutexTrig" />
	  </function>
	</scenario>`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.ParseString(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreCandidates measures candidate enumeration: the
// call-site analysis plus scenario construction, canonicalization and
// content hashing for the full minidb fault space — the explorer's
// per-campaign startup cost, paid again on every resume before a
// single test runs. Reports the space size so a generation change that
// silently shrinks coverage shows up next to its speed.
func BenchmarkExploreCandidates(b *testing.B) {
	cfg, ok := explore.ConfigFor("minidb")
	if !ok {
		b.Fatal("minidb config missing")
	}
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		cands := explore.Generate(cfg)
		if len(cands) == 0 {
			b.Fatal("no candidates")
		}
		n = len(cands)
	}
	b.ReportMetric(float64(n), "candidates")
}

// BenchmarkLintAnalyze measures the whole-program interprocedural
// analysis cold (no stored summaries): per-function summarization,
// SCC condensation, the RetChecked fixpoint and final classification
// for the full minivcs image — the `lfi lint` unit cost, also paid by
// the explorer at campaign start to seed its static prior.
func BenchmarkLintAnalyze(b *testing.B) {
	cfg, ok := explore.ConfigFor("minivcs")
	if !ok {
		b.Fatal("minivcs config missing")
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sites int
	for i := 0; i < b.N; i++ {
		rep, err := explore.Lint(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sites = len(rep.Sites)
	}
	b.ReportMetric(float64(sites), "sites")
}

// BenchmarkMiniwebRequest measures one static request end to end (the
// Table 5 workload unit).
func BenchmarkMiniwebRequest(b *testing.B) {
	app := miniweb.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := app.ServeStatic("/www/index.html", miniweb.MethodGET); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutorBatchLocal measures the execution-backend layer's
// dispatch overhead on the in-process path: one 32-scenario minidb
// batch through the local Executor (the adapter every Session uses by
// default). This is the number the executor gate in CI watches — the
// backend abstraction must not tax the hot local path.
func BenchmarkExecutorBatchLocal(b *testing.B) {
	s, err := ParseScenarioString(`<scenario name="bench-exec-read">
	  <trigger id="nth" class="CallCountTrigger"><args><n>3</n></args></trigger>
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="nth" /></function>
	</scenario>`)
	if err != nil {
		b.Fatal(err)
	}
	const tests = 32
	scens := make([]*Scenario, tests)
	for i := range scens {
		scens[i] = s
	}
	e := NewLocalExecutor(4)
	batch := &ExecBatch{System: "minidb", Scenarios: scens}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs, err := e.Run(context.Background(), batch)
		if err != nil || len(outs) != tests {
			b.Fatalf("%d outcomes, err %v", len(outs), err)
		}
	}
	b.ReportMetric(float64(tests)*float64(b.N)/b.Elapsed().Seconds(), "tests/s")
}

// BenchmarkExecutorBatchRemote is the same batch through a loopback
// `lfi serve` TCP worker: canonical-XML serialization, length-prefixed
// JSON-RPC framing and transport, per batch. The gap to
// BenchmarkExecutorBatchLocal is the wire tax a remote worker must
// amortize with batch size — the reason the cost model routes big
// batches remote and small hot batches locally.
func BenchmarkExecutorBatchRemote(b *testing.B) {
	s, err := ParseScenarioString(`<scenario name="bench-exec-read">
	  <trigger id="nth" class="CallCountTrigger"><args><n>3</n></args></trigger>
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="nth" /></function>
	</scenario>`)
	if err != nil {
		b.Fatal(err)
	}
	const tests = 32
	scens := make([]*Scenario, tests)
	for i := range scens {
		scens[i] = s
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ServeExecutor(ctx, ln, 4, nil)
	e, err := DialExecutor(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	batch := &ExecBatch{System: "minidb", Scenarios: scens}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs, err := e.Run(context.Background(), batch)
		if err != nil || len(outs) != tests {
			b.Fatalf("%d outcomes, err %v", len(outs), err)
		}
	}
	b.ReportMetric(float64(tests)*float64(b.N)/b.Elapsed().Seconds(), "tests/s")
}

// delayedRelay proxies TCP bytes to target, adding a fixed one-way
// latency to every segment — a simulated LAN hop. Pipelining is about
// latency: on raw loopback the wire tax is single-digit microseconds
// (see BenchmarkWireDecodeResponse) and depth-1 already matches
// depth-4, so the pipelining benchmark measures across this relay.
func delayedRelay(b *testing.B, target string, delay time.Duration) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				c.Close()
				continue
			}
			pipe := func(dst, src net.Conn) {
				defer dst.Close()
				defer src.Close()
				buf := make([]byte, 64<<10)
				for {
					n, err := src.Read(buf)
					if n > 0 {
						time.Sleep(delay)
						if _, werr := dst.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}
			go pipe(up, c)
			go pipe(c, up)
		}
	}()
	return ln.Addr().String()
}

// BenchmarkFleetPipelined measures what protocol-3 pipelining buys on a
// remote connection with realistic latency (a relay adds 200µs each
// way): the same 32-scenario minidb coverage batch with one batch in
// flight (the protocol-2 discipline — every round trip sits on the
// worker's critical path and it idles between batches) versus the
// proto-3 default of 4, where the scheduler keeps the worker saturated
// while frames are in the air. The depth-4 tests/s over depth-1 is the
// pipelining win BENCH_9 records.
func BenchmarkFleetPipelined(b *testing.B) {
	s, err := ParseScenarioString(`<scenario name="bench-exec-read">
	  <trigger id="nth" class="CallCountTrigger"><args><n>3</n></args></trigger>
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="nth" /></function>
	</scenario>`)
	if err != nil {
		b.Fatal(err)
	}
	const tests = 32
	scens := make([]*Scenario, tests)
	for i := range scens {
		scens[i] = s
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ServeExecutor(ctx, ln, 4, nil)
	e, err := DialExecutor(delayedRelay(b, ln.Addr().String(), 200*time.Microsecond))
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	for _, depth := range []int{1, 4} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			e.SetPipeline(depth)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				errs := make(chan error, depth)
				for d := 0; d < depth; d++ {
					go func(seed int64) {
						outs, err := e.Run(context.Background(), &ExecBatch{System: "minidb", Seed: seed, Coverage: true, Scenarios: scens})
						if err == nil && len(outs) != tests {
							err = fmt.Errorf("%d outcomes", len(outs))
						}
						errs <- err
					}(int64(d))
				}
				for d := 0; d < depth; d++ {
					if err := <-errs; err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(tests*depth)*float64(b.N)/b.Elapsed().Seconds(), "tests/s")
		})
	}
}
