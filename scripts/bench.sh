#!/usr/bin/env bash
# bench.sh — tier-1 gate + perf-trajectory benchmarks.
#
# Runs the build and full test suite, then the dispatch and campaign
# microbenchmarks with -benchmem, and writes machine-readable results
# to BENCH_<n>.json (n from $BENCH_INDEX, default 1) at the repo root,
# so future PRs can diff allocs/op and ns/op across the history.
#
# Usage: scripts/bench.sh [extra go-test -bench regexp]
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH_INDEX="${BENCH_INDEX:-1}"
# BENCH_TIME shortens runs for smoke use (e.g. BENCH_TIME=100ms in CI).
BENCH_TIME="${BENCH_TIME:-1s}"
OUT="BENCH_${BENCH_INDEX}.json"
PATTERN="${1:-BenchmarkDispatchUninstrumented|BenchmarkDispatchInstrumentedMiss|BenchmarkDispatchInstrumentedHit|BenchmarkCampaignParallel|BenchmarkInterceptionBaseline|BenchmarkTriggerEvaluation|BenchmarkExecutorBatchLocal|BenchmarkExecutorBatchRemote|BenchmarkFleetPipelined|BenchmarkArenaRunReuse|BenchmarkWireEncodeResponse|BenchmarkWireDecodeResponse|BenchmarkExploreCandidates|BenchmarkLintAnalyze}"

# BENCH_SKIP_TESTS=1 skips the tier-1 gate (CI runs it separately
# under -race; no point paying for the suite twice).
if [ "${BENCH_SKIP_TESTS:-0}" != "1" ]; then
    echo "== tier-1: go build ./... && go test ./..." >&2
    go build ./...
    go test ./...
fi

echo "== benchmarks: $PATTERN" >&2
# Root package carries the paper-level benchmarks; internal/exec the
# wire-codec microbenchmarks. The awk below keys on Benchmark lines
# only, so multiple package blocks concatenate cleanly.
RAW="$(go test -run '^$' -bench "$PATTERN" -benchmem -benchtime="$BENCH_TIME" . ./internal/exec)"
echo "$RAW" >&2

# Convert `go test -bench` lines into a JSON array:
#   BenchmarkName-8  N  ns/op  B/op  allocs/op  [custom metrics...]
echo "$RAW" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { print "{"; printf "  \"generated\": \"%s\",\n", date; print "  \"benchmarks\": [" ; first = 1 }
/^Benchmark/ {
    # $1 is the canonical benchmark name (incl. any -GOMAXPROCS suffix,
    # which benchstat-style tooling expects to stay).
    name = $1
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"iterations\": %s", name, $2
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_%-]/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { print "\n  ]"; print "}" }
' > "$OUT"

echo "== wrote $OUT" >&2
