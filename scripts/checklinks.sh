#!/usr/bin/env sh
# checklinks.sh — verify every relative markdown link in the repo's
# docs points at a file that exists. External links (http/https) and
# pure in-page anchors are skipped. Run from anywhere; exits non-zero
# listing every broken link. CI runs this in the docs step.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
fail=0

for doc in "$root"/*.md "$root"/.github/*.md; do
    [ -f "$doc" ] || continue
    dir="$(dirname "$doc")"
    # Extract inline markdown link targets: [text](target)
    grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//' |
    while IFS= read -r target; do
        case "$target" in
        http://*|https://*|mailto:*|\#*|'') continue ;;
        esac
        # Strip an in-page anchor from a file link.
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "broken link in ${doc#"$root"/}: $target" >&2
            # Propagate failure out of the pipeline subshell via a marker.
            touch "$root/.checklinks-failed"
        fi
    done
done

if [ -e "$root/.checklinks-failed" ]; then
    rm -f "$root/.checklinks-failed"
    fail=1
fi
exit $fail
